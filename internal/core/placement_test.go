package core

import (
	"testing"

	"repro/internal/model"
)

// placementSystem models the shapes the paper's rules must discriminate:
//
//	in -> [SRC] -> hot (high exposure, reaches out)
//	            -> dead (high exposure, no onward path)
//	            -> rare (low exposure, high impact)
//	            -> flag (boolean, high exposure and impact)
//	[SINK]: hot, rare, flag -> out
func placementSystem(t *testing.T) (*Profile, *model.System) {
	t.Helper()
	sys, err := model.NewBuilder("placement").
		AddSignal("in", model.Uint(16), model.AsSystemInput()).
		AddSignal("hot", model.Uint(16)).
		AddSignal("dead", model.Uint(16)).
		AddSignal("rare", model.Uint(16)).
		AddSignal("flag", model.Bool()).
		AddSignal("out", model.Uint(16), model.AsSystemOutput(1)).
		AddModule("SRC", model.In("in"), model.Out("hot", "dead", "rare", "flag")).
		AddModule("SINK", model.In("hot", "rare", "flag"), model.Out("out")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPermeability(sys)
	p.MustSet("SRC", 1, 1, 0.95) // in -> hot: high exposure
	p.MustSet("SRC", 1, 2, 1.0)  // in -> dead: permeability-1 witness
	p.MustSet("SRC", 1, 3, 0.05) // in -> rare: low exposure
	p.MustSet("SRC", 1, 4, 0.95) // in -> flag
	p.MustSet("SINK", 1, 1, 0.9) // hot -> out
	p.MustSet("SINK", 2, 1, 0.9) // rare -> out: high impact
	p.MustSet("SINK", 3, 1, 0.9) // flag -> out
	pr, err := BuildProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	return pr, sys
}

func selectedSet(sel Selection) map[model.SignalID]bool {
	out := map[model.SignalID]bool{}
	for _, s := range sel.Selected() {
		out[s] = true
	}
	return out
}

func TestSelectPARules(t *testing.T) {
	pr, _ := placementSystem(t)
	sel := SelectPA(pr, DefaultThresholds())
	got := selectedSet(sel)

	if !got["hot"] {
		t.Error("hot (high exposure, reaches output) not selected")
	}
	if got["dead"] {
		t.Error("dead (zero impact) selected by PA")
	}
	if got["rare"] {
		t.Error("rare (low exposure) selected by PA")
	}
	if got["flag"] {
		t.Error("boolean selected")
	}
	if got["in"] || got["out"] {
		t.Error("system boundary signal selected")
	}

	// Rule reporting.
	c, err := sel.Candidate("dead")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rules) == 0 || c.Rules[0] != RejectZeroImpact {
		t.Errorf("dead rules = %v, want zero-impact rejection", c.Rules)
	}
	c, _ = sel.Candidate("flag")
	if len(c.Rules) == 0 || c.Rules[0] != RejectBoolean {
		t.Errorf("flag rules = %v, want boolean rejection", c.Rules)
	}
}

func TestSelectExtendedAddsImpactAndWitness(t *testing.T) {
	pr, _ := placementSystem(t)
	sel := SelectExtended(pr, DefaultThresholds())
	got := selectedSet(sel)

	if !got["hot"] {
		t.Error("hot lost by extended selection")
	}
	if !got["rare"] {
		t.Error("rare (low exposure, high impact) not re-admitted by R3")
	}
	if !got["dead"] {
		t.Error("dead (permeability-1 witness) not re-admitted")
	}
	if got["flag"] {
		t.Error("boolean re-admitted despite EA limitation")
	}

	c, err := sel.Candidate("rare")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range c.Rules {
		if r == RuleR3Impact {
			found = true
		}
	}
	if !found {
		t.Errorf("rare rules = %v, want R3", c.Rules)
	}

	c, _ = sel.Candidate("dead")
	found = false
	for _, r := range c.Rules {
		if r == RuleWitness {
			found = true
		}
	}
	if !found {
		t.Errorf("dead rules = %v, want witness", c.Rules)
	}
}

func TestSelectEHGuardsInternalNonBooleans(t *testing.T) {
	_, sys := placementSystem(t)
	sel := SelectEH(sys)
	got := selectedSet(sel)
	for _, want := range []model.SignalID{"hot", "dead", "rare"} {
		if !got[want] {
			t.Errorf("EH did not select %s", want)
		}
	}
	for _, reject := range []model.SignalID{"in", "out", "flag"} {
		if got[reject] {
			t.Errorf("EH selected %s", reject)
		}
	}
}

func TestPAIsSubsetOfExtended(t *testing.T) {
	pr, _ := placementSystem(t)
	th := DefaultThresholds()
	pa := selectedSet(SelectPA(pr, th))
	ext := selectedSet(SelectExtended(pr, th))
	for s := range pa {
		if !ext[s] {
			t.Errorf("PA selection %s missing from extended selection", s)
		}
	}
}

func TestSelectionSelectedOrderedByExposure(t *testing.T) {
	pr, _ := placementSystem(t)
	sel := SelectExtended(pr, DefaultThresholds())
	picked := sel.Selected()
	for i := 1; i < len(picked); i++ {
		prev, _ := sel.Candidate(picked[i-1])
		cur, _ := sel.Candidate(picked[i])
		if prev.Exposure < cur.Exposure {
			t.Errorf("selection not exposure-ordered: %v", picked)
		}
	}
}

func TestSelectionCandidateUnknown(t *testing.T) {
	pr, _ := placementSystem(t)
	sel := SelectPA(pr, DefaultThresholds())
	if _, err := sel.Candidate("ghost"); err == nil {
		t.Error("Candidate(ghost) = nil error")
	}
}

func TestProfileBasics(t *testing.T) {
	pr, sys := placementSystem(t)
	if pr.System() != sys {
		t.Error("System() mismatch")
	}
	sp, err := pr.Signal("hot")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sp.Exposure, 0.95) {
		t.Errorf("hot exposure = %v, want 0.95", sp.Exposure)
	}
	if !approx(sp.Impact, 0.9) {
		t.Errorf("hot impact = %v, want 0.9", sp.Impact)
	}
	if !approx(sp.MaxInPermeability, 0.95) {
		t.Errorf("hot max-in-permeability = %v", sp.MaxInPermeability)
	}
	if _, err := pr.Signal("ghost"); err == nil {
		t.Error("Signal(ghost) = nil error")
	}

	// Output profile: impact on itself is 1.
	op, _ := pr.Signal("out")
	if op.Impact != 1 {
		t.Errorf("output impact = %v, want 1", op.Impact)
	}
}

func TestProfileRanked(t *testing.T) {
	pr, _ := placementSystem(t)
	byX := pr.Ranked(ByExposure)
	for i := 1; i < len(byX); i++ {
		if byX[i-1].Exposure < byX[i].Exposure {
			t.Fatalf("exposure ranking not descending at %d", i)
		}
	}
	byI := pr.Ranked(ByImpact)
	for i := 1; i < len(byI); i++ {
		if byI[i-1].Impact < byI[i].Impact {
			t.Fatalf("impact ranking not descending at %d", i)
		}
	}
	byC := pr.Ranked(ByCriticality)
	for i := 1; i < len(byC); i++ {
		if byC[i-1].Criticality < byC[i].Criticality {
			t.Fatalf("criticality ranking not descending at %d", i)
		}
	}
}

func TestMetricAndTreeKindStrings(t *testing.T) {
	for _, m := range []Metric{ByExposure, ByImpact, ByCriticality, Metric(0)} {
		if m.String() == "" {
			t.Errorf("Metric(%d).String() empty", int(m))
		}
	}
	for _, k := range []TreeKind{KindTraceTree, KindBacktrackTree, KindImpactTree, TreeKind(0)} {
		if k.String() == "" {
			t.Errorf("TreeKind(%d).String() empty", int(k))
		}
	}
}

func TestExtendedUsesCriticalityOnMultiOutput(t *testing.T) {
	// Two outputs: a high-criticality actuator and a negligible
	// diagnostic. A signal that only impacts the diagnostic has high
	// impact but negligible criticality — R3 must judge it by
	// criticality on a multi-output system.
	sys, err := model.NewBuilder("multi-r3").
		AddSignal("in", model.Uint(16), model.AsSystemInput()).
		AddSignal("toAct", model.Uint(16)).
		AddSignal("toDiag", model.Uint(16)).
		AddSignal("act", model.Uint(16), model.AsSystemOutput(1.0)).
		AddSignal("diag", model.Uint(16), model.AsSystemOutput(0.01)).
		AddModule("SRC", model.In("in"), model.Out("toAct", "toDiag")).
		AddModule("SINK", model.In("toAct", "toDiag"), model.Out("act", "diag")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPermeability(sys)
	p.MustSet("SRC", 1, 1, 0.1) // in -> toAct: low exposure
	p.MustSet("SRC", 1, 2, 0.1) // in -> toDiag: low exposure
	p.MustSet("SINK", 1, 1, 0.9)
	p.MustSet("SINK", 2, 2, 0.9) // toDiag impacts only the diagnostic
	pr, err := BuildProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	sel := SelectExtended(pr, DefaultThresholds())
	got := selectedSet(sel)
	// toAct: criticality = 1.0*0.9 = 0.9 >= 0.25 -> selected by R3.
	if !got["toAct"] {
		t.Error("toAct (high criticality) not selected")
	}
	// toDiag: impact 0.9 but criticality = 0.01*0.9 = 0.009 < 0.25 ->
	// rejected despite high impact.
	if got["toDiag"] {
		t.Error("toDiag selected despite negligible criticality")
	}
}
