package core

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// TreeKind distinguishes the propagation-path structures of Section 5.2.
type TreeKind int

// Tree kinds.
const (
	// KindTraceTree depicts propagation paths from a signal downstream
	// toward system outputs.
	KindTraceTree TreeKind = iota + 1
	// KindBacktrackTree depicts the paths errors can take to reach a
	// signal, expanding upstream toward system inputs.
	KindBacktrackTree
	// KindImpactTree is a trace tree whose paths carry weights — the
	// product of the permeabilities along the path (Section 8, Fig. 4).
	KindImpactTree
)

// String implements fmt.Stringer.
func (k TreeKind) String() string {
	switch k {
	case KindTraceTree:
		return "trace tree"
	case KindBacktrackTree:
		return "backtrack tree"
	case KindImpactTree:
		return "impact tree"
	default:
		return "unknown tree"
	}
}

// Node is one vertex of a propagation tree.
type Node struct {
	// Signal at this vertex.
	Signal model.SignalID
	// Edge is the module input/output pair traversed from the parent
	// (zero Edge at the root).
	Edge model.Edge
	// Weight is the product of permeabilities from the root to this
	// node (1 at the root; only meaningful for impact trees).
	Weight float64
	// Children are the continuations; a node with no children is a leaf
	// (a system boundary signal or a cycle cut).
	Children []*Node
}

// Tree is a propagation tree rooted at a signal.
type Tree struct {
	Kind TreeKind
	Root *Node
}

// Path is one root-to-leaf propagation path.
type Path struct {
	// Signals traversed, root first.
	Signals []model.SignalID
	// Edges traversed (len(Signals)-1 of them).
	Edges []model.Edge
	// Weight is the product of edge permeabilities (impact trees only;
	// 0 otherwise).
	Weight float64
}

// String renders "a -> b -> c (w=0.021)".
func (p Path) String() string {
	parts := make([]string, len(p.Signals))
	for i, s := range p.Signals {
		parts[i] = string(s)
	}
	return fmt.Sprintf("%s (w=%.3f)", strings.Join(parts, " -> "), p.Weight)
}

// DefaultMaxTreeNodes bounds propagation-tree growth. The number of
// simple paths — and hence tree nodes — can grow exponentially with
// graph depth (reconvergent fan-out doubles the path count per layer),
// so the builders stop with a clear error instead of exhausting memory.
// Systems that trip the cap should use internal/analytic's solver,
// which computes Eq. 2 without enumerating paths.
const DefaultMaxTreeNodes = 1 << 20

// BuildTraceTree expands the propagation paths from a signal downstream.
// A path never revisits a signal (cycles are cut), which is what makes
// the i→i self-loop of the target harmless in Table 5. Growth is capped
// at DefaultMaxTreeNodes; use BuildTraceTreeN to choose the cap.
func BuildTraceTree(sys *model.System, from model.SignalID) (*Tree, error) {
	return BuildTraceTreeN(sys, from, DefaultMaxTreeNodes)
}

// BuildTraceTreeN is BuildTraceTree with an explicit node cap.
func BuildTraceTreeN(sys *model.System, from model.SignalID, maxNodes int) (*Tree, error) {
	if _, ok := sys.Signal(from); !ok {
		return nil, fmt.Errorf("core: unknown signal %q", from)
	}
	root := &Node{Signal: from, Weight: 1}
	x := &expansion{sys: sys, budget: maxNodes - 1, max: maxNodes}
	if err := x.down(root, map[model.SignalID]bool{from: true}); err != nil {
		return nil, fmt.Errorf("core: trace tree rooted at %q: %w", from, err)
	}
	return &Tree{Kind: KindTraceTree, Root: root}, nil
}

// BuildImpactTree is BuildTraceTree with path weights accumulated from
// the permeability matrix. Growth is capped at DefaultMaxTreeNodes; use
// BuildImpactTreeN to choose the cap.
func BuildImpactTree(p *Permeability, from model.SignalID) (*Tree, error) {
	return BuildImpactTreeN(p, from, DefaultMaxTreeNodes)
}

// BuildImpactTreeN is BuildImpactTree with an explicit node cap.
func BuildImpactTreeN(p *Permeability, from model.SignalID, maxNodes int) (*Tree, error) {
	if _, ok := p.sys.Signal(from); !ok {
		return nil, fmt.Errorf("core: unknown signal %q", from)
	}
	root := &Node{Signal: from, Weight: 1}
	x := &expansion{sys: p.sys, perm: p, budget: maxNodes - 1, max: maxNodes}
	if err := x.down(root, map[model.SignalID]bool{from: true}); err != nil {
		return nil, fmt.Errorf("core: impact tree rooted at %q: %w", from, err)
	}
	return &Tree{Kind: KindImpactTree, Root: root}, nil
}

// BuildBacktrackTree expands the paths errors can take to reach a signal,
// upstream toward system inputs. Cycles are cut as in trace trees, and
// growth is capped at DefaultMaxTreeNodes (see BuildBacktrackTreeN).
func BuildBacktrackTree(sys *model.System, to model.SignalID) (*Tree, error) {
	return BuildBacktrackTreeN(sys, to, DefaultMaxTreeNodes)
}

// BuildBacktrackTreeN is BuildBacktrackTree with an explicit node cap.
func BuildBacktrackTreeN(sys *model.System, to model.SignalID, maxNodes int) (*Tree, error) {
	if _, ok := sys.Signal(to); !ok {
		return nil, fmt.Errorf("core: unknown signal %q", to)
	}
	root := &Node{Signal: to, Weight: 1}
	x := &expansion{sys: sys, budget: maxNodes - 1, max: maxNodes}
	if err := x.up(root, map[model.SignalID]bool{to: true}); err != nil {
		return nil, fmt.Errorf("core: backtrack tree rooted at %q: %w", to, err)
	}
	return &Tree{Kind: KindBacktrackTree, Root: root}, nil
}

// expansion carries the shared node budget through the recursive build.
type expansion struct {
	sys    *model.System
	perm   *Permeability
	budget int // nodes still allowed beyond the root
	max    int // original cap, for the error message
}

func (x *expansion) spend() error {
	if x.budget <= 0 {
		return fmt.Errorf("exceeds %d nodes (pathological path fan-out; raise the cap or use internal/analytic)", x.max)
	}
	x.budget--
	return nil
}

func (x *expansion) down(n *Node, onPath map[model.SignalID]bool) error {
	for _, e := range x.sys.OutEdges(n.Signal) {
		if onPath[e.To] {
			continue // cycle cut
		}
		if err := x.spend(); err != nil {
			return err
		}
		w := n.Weight
		if x.perm != nil {
			w *= x.perm.Get(e)
		}
		child := &Node{Signal: e.To, Edge: e, Weight: w}
		n.Children = append(n.Children, child)
		onPath[e.To] = true
		err := x.down(child, onPath)
		delete(onPath, e.To)
		if err != nil {
			return err
		}
	}
	return nil
}

func (x *expansion) up(n *Node, onPath map[model.SignalID]bool) error {
	for _, e := range x.sys.InEdges(n.Signal) {
		if onPath[e.From] {
			continue
		}
		if err := x.spend(); err != nil {
			return err
		}
		child := &Node{Signal: e.From, Edge: e, Weight: 0}
		n.Children = append(n.Children, child)
		onPath[e.From] = true
		err := x.up(child, onPath)
		delete(onPath, e.From)
		if err != nil {
			return err
		}
	}
	return nil
}

// Paths returns every root-to-leaf path of the tree.
func (t *Tree) Paths() []Path {
	var out []Path
	collectPaths(t.Root, nil, nil, &out, nil)
	return out
}

// PathsTo returns every root-to-node path ending at the given signal —
// for impact trees, the paths whose weights enter Eq. 2. The result is
// bounded by the node cap the tree was built under (every returned path
// ends at a distinct node); use PathsToN to enforce a tighter cap.
func (t *Tree) PathsTo(dest model.SignalID) []Path {
	var out []Path
	collectPaths(t.Root, nil, nil, &out, &dest)
	return out
}

// PathsToN is PathsTo with an explicit path-count cap: it stops with a
// clear error as soon as more than maxPaths paths end at dest, instead
// of materialising them all.
func (t *Tree) PathsToN(dest model.SignalID, maxPaths int) ([]Path, error) {
	var out []Path
	if !collectCapped(t.Root, nil, nil, &out, dest, maxPaths) {
		return nil, fmt.Errorf("core: paths to %q exceed the cap of %d (pathological path fan-out; use internal/analytic)", dest, maxPaths)
	}
	return out, nil
}

func collectCapped(n *Node, sigs []model.SignalID, edges []model.Edge, out *[]Path, dest model.SignalID, maxPaths int) bool {
	sigs = append(sigs, n.Signal)
	if n.Edge != (model.Edge{}) {
		edges = append(edges, n.Edge)
	}
	if n.Signal == dest && len(edges) > 0 {
		if len(*out) >= maxPaths {
			return false
		}
		*out = append(*out, Path{
			Signals: append([]model.SignalID(nil), sigs...),
			Edges:   append([]model.Edge(nil), edges...),
			Weight:  n.Weight,
		})
	}
	for _, c := range n.Children {
		if !collectCapped(c, sigs, edges, out, dest, maxPaths) {
			return false
		}
	}
	return true
}

func collectPaths(n *Node, sigs []model.SignalID, edges []model.Edge, out *[]Path, dest *model.SignalID) {
	sigs = append(sigs, n.Signal)
	if n.Edge != (model.Edge{}) {
		edges = append(edges, n.Edge)
	}
	hit := dest != nil && n.Signal == *dest && len(edges) > 0
	leaf := len(n.Children) == 0 && dest == nil
	if hit || leaf {
		*out = append(*out, Path{
			Signals: append([]model.SignalID(nil), sigs...),
			Edges:   append([]model.Edge(nil), edges...),
			Weight:  n.Weight,
		})
	}
	for _, c := range n.Children {
		collectPaths(c, sigs, edges, out, dest)
	}
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int { return countNodes(t.Root) }

func countNodes(n *Node) int {
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// Render draws the tree as indented ASCII, one node per line, with path
// weights on impact trees.
func (t *Tree) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s rooted at %s\n", t.Kind, t.Root.Signal)
	renderNode(&b, t.Root, "", t.Kind == KindImpactTree)
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, prefix string, weights bool) {
	for i, c := range n.Children {
		connector := "├─"
		childPrefix := prefix + "│ "
		if i == len(n.Children)-1 {
			connector = "└─"
			childPrefix = prefix + "  "
		}
		if weights {
			fmt.Fprintf(b, "%s%s %s (w=%.3f)\n", prefix, connector, c.Signal, c.Weight)
		} else {
			fmt.Fprintf(b, "%s%s %s\n", prefix, connector, c.Signal)
		}
		renderNode(b, c, childPrefix, weights)
	}
}
