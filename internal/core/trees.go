package core

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// TreeKind distinguishes the propagation-path structures of Section 5.2.
type TreeKind int

// Tree kinds.
const (
	// KindTraceTree depicts propagation paths from a signal downstream
	// toward system outputs.
	KindTraceTree TreeKind = iota + 1
	// KindBacktrackTree depicts the paths errors can take to reach a
	// signal, expanding upstream toward system inputs.
	KindBacktrackTree
	// KindImpactTree is a trace tree whose paths carry weights — the
	// product of the permeabilities along the path (Section 8, Fig. 4).
	KindImpactTree
)

// String implements fmt.Stringer.
func (k TreeKind) String() string {
	switch k {
	case KindTraceTree:
		return "trace tree"
	case KindBacktrackTree:
		return "backtrack tree"
	case KindImpactTree:
		return "impact tree"
	default:
		return "unknown tree"
	}
}

// Node is one vertex of a propagation tree.
type Node struct {
	// Signal at this vertex.
	Signal model.SignalID
	// Edge is the module input/output pair traversed from the parent
	// (zero Edge at the root).
	Edge model.Edge
	// Weight is the product of permeabilities from the root to this
	// node (1 at the root; only meaningful for impact trees).
	Weight float64
	// Children are the continuations; a node with no children is a leaf
	// (a system boundary signal or a cycle cut).
	Children []*Node
}

// Tree is a propagation tree rooted at a signal.
type Tree struct {
	Kind TreeKind
	Root *Node
}

// Path is one root-to-leaf propagation path.
type Path struct {
	// Signals traversed, root first.
	Signals []model.SignalID
	// Edges traversed (len(Signals)-1 of them).
	Edges []model.Edge
	// Weight is the product of edge permeabilities (impact trees only;
	// 0 otherwise).
	Weight float64
}

// String renders "a -> b -> c (w=0.021)".
func (p Path) String() string {
	parts := make([]string, len(p.Signals))
	for i, s := range p.Signals {
		parts[i] = string(s)
	}
	return fmt.Sprintf("%s (w=%.3f)", strings.Join(parts, " -> "), p.Weight)
}

// BuildTraceTree expands the propagation paths from a signal downstream.
// A path never revisits a signal (cycles are cut), which is what makes
// the i→i self-loop of the target harmless in Table 5.
func BuildTraceTree(sys *model.System, from model.SignalID) (*Tree, error) {
	if _, ok := sys.Signal(from); !ok {
		return nil, fmt.Errorf("core: unknown signal %q", from)
	}
	root := &Node{Signal: from, Weight: 1}
	expandDown(sys, nil, root, map[model.SignalID]bool{from: true})
	return &Tree{Kind: KindTraceTree, Root: root}, nil
}

// BuildImpactTree is BuildTraceTree with path weights accumulated from
// the permeability matrix.
func BuildImpactTree(p *Permeability, from model.SignalID) (*Tree, error) {
	if _, ok := p.sys.Signal(from); !ok {
		return nil, fmt.Errorf("core: unknown signal %q", from)
	}
	root := &Node{Signal: from, Weight: 1}
	expandDown(p.sys, p, root, map[model.SignalID]bool{from: true})
	return &Tree{Kind: KindImpactTree, Root: root}, nil
}

func expandDown(sys *model.System, p *Permeability, n *Node, onPath map[model.SignalID]bool) {
	for _, e := range sys.OutEdges(n.Signal) {
		if onPath[e.To] {
			continue // cycle cut
		}
		w := n.Weight
		if p != nil {
			w *= p.Get(e)
		}
		child := &Node{Signal: e.To, Edge: e, Weight: w}
		n.Children = append(n.Children, child)
		onPath[e.To] = true
		expandDown(sys, p, child, onPath)
		delete(onPath, e.To)
	}
}

// BuildBacktrackTree expands the paths errors can take to reach a signal,
// upstream toward system inputs. Cycles are cut as in trace trees.
func BuildBacktrackTree(sys *model.System, to model.SignalID) (*Tree, error) {
	if _, ok := sys.Signal(to); !ok {
		return nil, fmt.Errorf("core: unknown signal %q", to)
	}
	root := &Node{Signal: to, Weight: 1}
	expandUp(sys, root, map[model.SignalID]bool{to: true})
	return &Tree{Kind: KindBacktrackTree, Root: root}, nil
}

func expandUp(sys *model.System, n *Node, onPath map[model.SignalID]bool) {
	for _, e := range sys.InEdges(n.Signal) {
		if onPath[e.From] {
			continue
		}
		child := &Node{Signal: e.From, Edge: e, Weight: 0}
		n.Children = append(n.Children, child)
		onPath[e.From] = true
		expandUp(sys, child, onPath)
		delete(onPath, e.From)
	}
}

// Paths returns every root-to-leaf path of the tree.
func (t *Tree) Paths() []Path {
	var out []Path
	collectPaths(t.Root, nil, nil, &out, nil)
	return out
}

// PathsTo returns every root-to-node path ending at the given signal —
// for impact trees, the paths whose weights enter Eq. 2.
func (t *Tree) PathsTo(dest model.SignalID) []Path {
	var out []Path
	collectPaths(t.Root, nil, nil, &out, &dest)
	return out
}

func collectPaths(n *Node, sigs []model.SignalID, edges []model.Edge, out *[]Path, dest *model.SignalID) {
	sigs = append(sigs, n.Signal)
	if n.Edge != (model.Edge{}) {
		edges = append(edges, n.Edge)
	}
	hit := dest != nil && n.Signal == *dest && len(edges) > 0
	leaf := len(n.Children) == 0 && dest == nil
	if hit || leaf {
		*out = append(*out, Path{
			Signals: append([]model.SignalID(nil), sigs...),
			Edges:   append([]model.Edge(nil), edges...),
			Weight:  n.Weight,
		})
	}
	for _, c := range n.Children {
		collectPaths(c, sigs, edges, out, dest)
	}
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int { return countNodes(t.Root) }

func countNodes(n *Node) int {
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// Render draws the tree as indented ASCII, one node per line, with path
// weights on impact trees.
func (t *Tree) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s rooted at %s\n", t.Kind, t.Root.Signal)
	renderNode(&b, t.Root, "", t.Kind == KindImpactTree)
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, prefix string, weights bool) {
	for i, c := range n.Children {
		connector := "├─"
		childPrefix := prefix + "│ "
		if i == len(n.Children)-1 {
			connector = "└─"
			childPrefix = prefix + "  "
		}
		if weights {
			fmt.Fprintf(b, "%s%s %s (w=%.3f)\n", prefix, connector, c.Signal, c.Weight)
		} else {
			fmt.Fprintf(b, "%s%s %s\n", prefix, connector, c.Signal)
		}
		renderNode(b, c, childPrefix, weights)
	}
}
