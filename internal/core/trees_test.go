package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestTraceTreeStructure(t *testing.T) {
	sys := chainSystem(t)
	tree, err := BuildTraceTree(sys, "in")
	if err != nil {
		t.Fatal(err)
	}
	if tree.Kind != KindTraceTree {
		t.Errorf("Kind = %v", tree.Kind)
	}
	paths := tree.Paths()
	// in->m1->out and in->m2->out.
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if p.Signals[0] != "in" || p.Signals[len(p.Signals)-1] != "out" {
			t.Errorf("path %v does not run in..out", p.Signals)
		}
		if len(p.Edges) != len(p.Signals)-1 {
			t.Errorf("path has %d edges for %d signals", len(p.Edges), len(p.Signals))
		}
	}
	if tree.Size() != 5 { // in, m1, out, m2, out
		t.Errorf("Size = %d, want 5", tree.Size())
	}
}

func TestBacktrackTreeStructure(t *testing.T) {
	sys := chainSystem(t)
	tree, err := BuildBacktrackTree(sys, "out")
	if err != nil {
		t.Fatal(err)
	}
	paths := tree.Paths()
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if p.Signals[0] != "out" || p.Signals[len(p.Signals)-1] != "in" {
			t.Errorf("backtrack path %v does not run out..in", p.Signals)
		}
	}
}

func TestTreesRejectUnknownSignals(t *testing.T) {
	sys := chainSystem(t)
	if _, err := BuildTraceTree(sys, "ghost"); err == nil {
		t.Error("trace tree of unknown signal accepted")
	}
	if _, err := BuildBacktrackTree(sys, "ghost"); err == nil {
		t.Error("backtrack tree of unknown signal accepted")
	}
	p := NewPermeability(sys)
	if _, err := BuildImpactTree(p, "ghost"); err == nil {
		t.Error("impact tree of unknown signal accepted")
	}
}

func TestTreesAreAcyclic(t *testing.T) {
	sys := loopSystem(t)
	tree, err := BuildTraceTree(sys, "s")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tree.Paths() {
		seen := map[model.SignalID]bool{}
		for _, s := range p.Signals {
			if seen[s] {
				t.Fatalf("path %v revisits %s", p.Signals, s)
			}
			seen[s] = true
		}
	}
	bt, err := BuildBacktrackTree(sys, "out")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range bt.Paths() {
		seen := map[model.SignalID]bool{}
		for _, s := range p.Signals {
			if seen[s] {
				t.Fatalf("backtrack path %v revisits %s", p.Signals, s)
			}
			seen[s] = true
		}
	}
}

func TestImpactTreeWeights(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.5)
	p.MustSet("A", 1, 2, 0.2)
	p.MustSet("B", 1, 1, 0.8)
	p.MustSet("B", 2, 1, 0.5)

	tree, err := BuildImpactTree(p, "in")
	if err != nil {
		t.Fatal(err)
	}
	paths := tree.PathsTo("out")
	if len(paths) != 2 {
		t.Fatalf("PathsTo(out) = %d, want 2", len(paths))
	}
	weights := map[string]float64{}
	for _, path := range paths {
		weights[string(path.Signals[1])] = path.Weight
	}
	if !approx(weights["m1"], 0.4) {
		t.Errorf("weight via m1 = %v, want 0.4", weights["m1"])
	}
	if !approx(weights["m2"], 0.1) {
		t.Errorf("weight via m2 = %v, want 0.1", weights["m2"])
	}
}

func TestPathsToMatchesIntermediate(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.5)
	tree, err := BuildImpactTree(p, "in")
	if err != nil {
		t.Fatal(err)
	}
	paths := tree.PathsTo("m1")
	if len(paths) != 1 {
		t.Fatalf("PathsTo(m1) = %d, want 1", len(paths))
	}
	if !approx(paths[0].Weight, 0.5) {
		t.Errorf("weight = %v, want 0.5", paths[0].Weight)
	}
	// The root does not count as a path to itself.
	if got := tree.PathsTo("in"); len(got) != 0 {
		t.Errorf("PathsTo(root) = %d paths, want 0", len(got))
	}
}

func TestImpactFromPathsClamps(t *testing.T) {
	if got := ImpactFromPaths(nil); got != 0 {
		t.Errorf("ImpactFromPaths(nil) = %v, want 0", got)
	}
	paths := []Path{{Weight: 1}, {Weight: 0.5}}
	if got := ImpactFromPaths(paths); got != 1 {
		t.Errorf("ImpactFromPaths = %v, want 1", got)
	}
}

func TestRenderShowsStructureAndWeights(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.5)
	p.MustSet("B", 1, 1, 0.8)
	tree, err := BuildImpactTree(p, "in")
	if err != nil {
		t.Fatal(err)
	}
	r := tree.Render()
	for _, want := range []string{"impact tree rooted at in", "m1", "out", "w=0.400"} {
		if !strings.Contains(r, want) {
			t.Errorf("Render() missing %q:\n%s", want, r)
		}
	}
	tt, err := BuildTraceTree(sys, "in")
	if err != nil {
		t.Fatal(err)
	}
	if r := tt.Render(); strings.Contains(r, "w=") {
		t.Error("trace tree render shows weights")
	}
}

func TestPathString(t *testing.T) {
	p := Path{Signals: []model.SignalID{"a", "b"}, Weight: 0.25}
	if got := p.String(); got != "a -> b (w=0.250)" {
		t.Errorf("String() = %q", got)
	}
}

func TestTreeNodeCapErrors(t *testing.T) {
	sys, p := fanoutSystem(t, 10)
	// A generous cap succeeds...
	if _, err := BuildImpactTreeN(p, "l0_0", 1<<20); err != nil {
		t.Fatalf("uncapped build failed: %v", err)
	}
	// ...a tight cap fails fast with an explanatory error.
	if _, err := BuildImpactTreeN(p, "l0_0", 50); err == nil {
		t.Error("tight impact-tree cap not enforced")
	} else if !strings.Contains(err.Error(), "internal/analytic") {
		t.Errorf("cap error does not point at the solver: %v", err)
	}
	if _, err := BuildTraceTreeN(sys, "l0_0", 50); err == nil {
		t.Error("tight trace-tree cap not enforced")
	}
	if _, err := BuildBacktrackTreeN(sys, "l9_0", 50); err == nil {
		t.Error("tight backtrack-tree cap not enforced")
	}
}

func TestPathsToNCap(t *testing.T) {
	_, p := fanoutSystem(t, 8)
	tree, err := BuildImpactTree(p, "l0_0")
	if err != nil {
		t.Fatal(err)
	}
	all := tree.PathsTo("l7_0")
	if len(all) < 32 {
		t.Fatalf("fixture too small: %d paths", len(all))
	}
	capped, err := tree.PathsToN("l7_0", len(all))
	if err != nil || len(capped) != len(all) {
		t.Fatalf("PathsToN at exact cap: %d paths, %v", len(capped), err)
	}
	if _, err := tree.PathsToN("l7_0", len(all)-1); err == nil {
		t.Error("path cap not enforced")
	}
}

// fanoutSystem builds `layers` ranks of two signals with full cross
// wiring — 2^(layers-1) root-to-leaf paths, the reconvergent shape the
// caps exist for.
func fanoutSystem(t *testing.T, layers int) (*model.System, *Permeability) {
	t.Helper()
	b := model.NewBuilder("fanout")
	id := func(l, i int) model.SignalID {
		return model.SignalID(fmt.Sprintf("l%d_%d", l, i))
	}
	for l := 0; l < layers; l++ {
		for i := 0; i < 2; i++ {
			switch l {
			case 0:
				b.AddSignal(id(l, i), model.Uint(8), model.AsSystemInput())
			case layers - 1:
				b.AddSignal(id(l, i), model.Uint(8), model.AsSystemOutput(1))
			default:
				b.AddSignal(id(l, i), model.Uint(8))
			}
		}
	}
	for l := 1; l < layers; l++ {
		for i := 0; i < 2; i++ {
			b.AddModule(model.ModuleID(fmt.Sprintf("F%d_%d", l, i)),
				model.In(id(l-1, 0), id(l-1, 1)), model.Out(id(l, i)))
		}
	}
	sys := b.MustBuild()
	p := NewPermeability(sys)
	for _, e := range sys.Edges() {
		if err := p.SetEdge(e, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	return sys, p
}
