package core

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func TestTraceTreeStructure(t *testing.T) {
	sys := chainSystem(t)
	tree, err := BuildTraceTree(sys, "in")
	if err != nil {
		t.Fatal(err)
	}
	if tree.Kind != KindTraceTree {
		t.Errorf("Kind = %v", tree.Kind)
	}
	paths := tree.Paths()
	// in->m1->out and in->m2->out.
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if p.Signals[0] != "in" || p.Signals[len(p.Signals)-1] != "out" {
			t.Errorf("path %v does not run in..out", p.Signals)
		}
		if len(p.Edges) != len(p.Signals)-1 {
			t.Errorf("path has %d edges for %d signals", len(p.Edges), len(p.Signals))
		}
	}
	if tree.Size() != 5 { // in, m1, out, m2, out
		t.Errorf("Size = %d, want 5", tree.Size())
	}
}

func TestBacktrackTreeStructure(t *testing.T) {
	sys := chainSystem(t)
	tree, err := BuildBacktrackTree(sys, "out")
	if err != nil {
		t.Fatal(err)
	}
	paths := tree.Paths()
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if p.Signals[0] != "out" || p.Signals[len(p.Signals)-1] != "in" {
			t.Errorf("backtrack path %v does not run out..in", p.Signals)
		}
	}
}

func TestTreesRejectUnknownSignals(t *testing.T) {
	sys := chainSystem(t)
	if _, err := BuildTraceTree(sys, "ghost"); err == nil {
		t.Error("trace tree of unknown signal accepted")
	}
	if _, err := BuildBacktrackTree(sys, "ghost"); err == nil {
		t.Error("backtrack tree of unknown signal accepted")
	}
	p := NewPermeability(sys)
	if _, err := BuildImpactTree(p, "ghost"); err == nil {
		t.Error("impact tree of unknown signal accepted")
	}
}

func TestTreesAreAcyclic(t *testing.T) {
	sys := loopSystem(t)
	tree, err := BuildTraceTree(sys, "s")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tree.Paths() {
		seen := map[model.SignalID]bool{}
		for _, s := range p.Signals {
			if seen[s] {
				t.Fatalf("path %v revisits %s", p.Signals, s)
			}
			seen[s] = true
		}
	}
	bt, err := BuildBacktrackTree(sys, "out")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range bt.Paths() {
		seen := map[model.SignalID]bool{}
		for _, s := range p.Signals {
			if seen[s] {
				t.Fatalf("backtrack path %v revisits %s", p.Signals, s)
			}
			seen[s] = true
		}
	}
}

func TestImpactTreeWeights(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.5)
	p.MustSet("A", 1, 2, 0.2)
	p.MustSet("B", 1, 1, 0.8)
	p.MustSet("B", 2, 1, 0.5)

	tree, err := BuildImpactTree(p, "in")
	if err != nil {
		t.Fatal(err)
	}
	paths := tree.PathsTo("out")
	if len(paths) != 2 {
		t.Fatalf("PathsTo(out) = %d, want 2", len(paths))
	}
	weights := map[string]float64{}
	for _, path := range paths {
		weights[string(path.Signals[1])] = path.Weight
	}
	if !approx(weights["m1"], 0.4) {
		t.Errorf("weight via m1 = %v, want 0.4", weights["m1"])
	}
	if !approx(weights["m2"], 0.1) {
		t.Errorf("weight via m2 = %v, want 0.1", weights["m2"])
	}
}

func TestPathsToMatchesIntermediate(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.5)
	tree, err := BuildImpactTree(p, "in")
	if err != nil {
		t.Fatal(err)
	}
	paths := tree.PathsTo("m1")
	if len(paths) != 1 {
		t.Fatalf("PathsTo(m1) = %d, want 1", len(paths))
	}
	if !approx(paths[0].Weight, 0.5) {
		t.Errorf("weight = %v, want 0.5", paths[0].Weight)
	}
	// The root does not count as a path to itself.
	if got := tree.PathsTo("in"); len(got) != 0 {
		t.Errorf("PathsTo(root) = %d paths, want 0", len(got))
	}
}

func TestImpactFromPathsClamps(t *testing.T) {
	if got := ImpactFromPaths(nil); got != 0 {
		t.Errorf("ImpactFromPaths(nil) = %v, want 0", got)
	}
	paths := []Path{{Weight: 1}, {Weight: 0.5}}
	if got := ImpactFromPaths(paths); got != 1 {
		t.Errorf("ImpactFromPaths = %v, want 1", got)
	}
}

func TestRenderShowsStructureAndWeights(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.5)
	p.MustSet("B", 1, 1, 0.8)
	tree, err := BuildImpactTree(p, "in")
	if err != nil {
		t.Fatal(err)
	}
	r := tree.Render()
	for _, want := range []string{"impact tree rooted at in", "m1", "out", "w=0.400"} {
		if !strings.Contains(r, want) {
			t.Errorf("Render() missing %q:\n%s", want, r)
		}
	}
	tt, err := BuildTraceTree(sys, "in")
	if err != nil {
		t.Fatal(err)
	}
	if r := tt.Render(); strings.Contains(r, "w=") {
		t.Error("trace tree render shows weights")
	}
}

func TestPathString(t *testing.T) {
	p := Path{Signals: []model.SignalID{"a", "b"}, Weight: 0.25}
	if got := p.String(); got != "a -> b (w=0.250)" {
		t.Errorf("String() = %q", got)
	}
}
