// Package paper ships the published data of Hiller, Jhumka and Suri
// (DSN 2002) as fixtures: the estimated error permeability values of
// Table 1, the derived measures of Tables 2 and 5, the resource figures
// of Table 3 and the selections of Sections 5 and 10. Feeding Table 1
// into the analysis framework must regenerate every derived artifact
// exactly (to the paper's printed precision) — the analytical
// reproduction mode of DESIGN.md §3.
package paper

import (
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/target"
)

// System returns the target system description (Figure 1).
func System() *model.System { return target.NewSystem() }

// Table1 returns the paper's estimated error permeability matrix: the 25
// input/output pair values of Table 1.
func Table1() *core.Permeability {
	sys := System()
	p := core.NewPermeability(sys)
	// CLOCK: in 1 = i; out 1 = ms_slot_nbr, out 2 = mscnt.
	p.MustSet(target.ModClock, 1, 1, 1.000)
	p.MustSet(target.ModClock, 1, 2, 0.000)
	// DIST_S: in 1..3 = PACNT, TIC1, TCNT; out 1..3 = pulscnt,
	// slow_speed, stopped.
	p.MustSet(target.ModDistS, 1, 1, 0.957)
	p.MustSet(target.ModDistS, 2, 1, 0.000)
	p.MustSet(target.ModDistS, 3, 1, 0.000)
	p.MustSet(target.ModDistS, 1, 2, 0.010)
	p.MustSet(target.ModDistS, 2, 2, 0.000)
	p.MustSet(target.ModDistS, 3, 2, 0.000)
	p.MustSet(target.ModDistS, 1, 3, 0.000)
	p.MustSet(target.ModDistS, 2, 3, 0.000)
	p.MustSet(target.ModDistS, 3, 3, 0.000)
	// PRES_S: in 1 = ADC; out 1 = IsValue.
	p.MustSet(target.ModPresS, 1, 1, 0.000)
	// CALC: in 1..5 = i, mscnt, pulscnt, slow_speed, stopped; out 1 = i,
	// out 2 = SetValue.
	p.MustSet(target.ModCalc, 1, 1, 1.000)
	p.MustSet(target.ModCalc, 2, 1, 0.000)
	p.MustSet(target.ModCalc, 3, 1, 0.494)
	p.MustSet(target.ModCalc, 4, 1, 0.000)
	p.MustSet(target.ModCalc, 5, 1, 0.013)
	p.MustSet(target.ModCalc, 1, 2, 0.056)
	p.MustSet(target.ModCalc, 2, 2, 0.530)
	p.MustSet(target.ModCalc, 3, 2, 0.000)
	p.MustSet(target.ModCalc, 4, 2, 0.892)
	p.MustSet(target.ModCalc, 5, 2, 0.000)
	// V_REG: in 1 = SetValue, in 2 = IsValue; out 1 = OutValue.
	p.MustSet(target.ModVReg, 1, 1, 0.885)
	p.MustSet(target.ModVReg, 2, 1, 0.896)
	// PRES_A: in 1 = OutValue; out 1 = TOC2.
	p.MustSet(target.ModPresA, 1, 1, 0.875)
	return p
}

// Table2Exposures returns the signal error exposures of Table 2.
func Table2Exposures() map[model.SignalID]float64 {
	return map[model.SignalID]float64{
		target.SigOutValue:  1.781,
		target.SigI:         1.507,
		target.SigSetValue:  1.478,
		target.SigMsSlotNbr: 1.000,
		target.SigPulscnt:   0.957,
		target.SigTOC2:      0.875,
		target.SigSlowSpeed: 0.010,
		target.SigIsValue:   0.000,
		target.SigMscnt:     0.000,
		target.SigStopped:   0.000,
	}
}

// Table5Impacts returns the impact values on TOC2 of Table 5. TOC2
// itself has no entry in the paper ("one could say that the impact is
// 1.0 in this case") and is omitted.
func Table5Impacts() map[model.SignalID]float64 {
	return map[model.SignalID]float64{
		target.SigPACNT:     0.027,
		target.SigTCNT:      0.000,
		target.SigTIC1:      0.000,
		target.SigADC:       0.000,
		target.SigOutValue:  0.875,
		target.SigI:         0.043,
		target.SigSetValue:  0.774,
		target.SigMsSlotNbr: 0.000,
		target.SigPulscnt:   0.021,
		target.SigSlowSpeed: 0.691,
		target.SigIsValue:   0.784,
		target.SigMscnt:     0.410,
		target.SigStopped:   0.001,
	}
}

// Figure4Weights returns the two propagation-path weights of the impact
// tree for pulscnt → TOC2 (Figure 4), keyed by the first hop.
func Figure4Weights() map[model.SignalID]float64 {
	return map[model.SignalID]float64{
		target.SigI:        0.021, // pulscnt → i → SetValue → OutValue → TOC2
		target.SigSetValue: 0.000, // pulscnt → SetValue → OutValue → TOC2
	}
}

// Table3 resource figures (bytes).
const (
	EHSetROMBytes = 262
	EHSetRAMBytes = 94
	PASetROMBytes = 150
	PASetRAMBytes = 54
)

// PASelection returns the signals the PA-approach guarded (Section 5.3).
func PASelection() []model.SignalID {
	return []model.SignalID{
		target.SigSetValue, target.SigI, target.SigPulscnt, target.SigOutValue,
	}
}

// EHSelection returns the signals the EH-approach guarded (Section 5.1).
func EHSelection() []model.SignalID {
	return []model.SignalID{
		target.SigSetValue, target.SigIsValue, target.SigI, target.SigPulscnt,
		target.SigMsSlotNbr, target.SigMscnt, target.SigOutValue,
	}
}

// ExtendedSelection returns the signals the extended framework guarded
// (Section 10) — identical to the EH selection.
func ExtendedSelection() []model.SignalID { return EHSelection() }

// Table4 reports the published detection coverages for errors injected
// at the system inputs (input error model). Dashes in the paper are
// zero here.
type Table4Row struct {
	Signal   model.SignalID
	NErr     int
	Coverage map[string]float64 // per EA name
	Total    float64
}

// Table4 returns the published per-signal rows.
func Table4() []Table4Row {
	return []Table4Row{
		{
			Signal: target.SigPACNT, NErr: 1856,
			Coverage: map[string]float64{
				target.EA1: 0.218, target.EA2: 0.105, target.EA4: 0.975, target.EA7: 0.005,
			},
			Total: 0.975,
		},
		{Signal: target.SigTIC1, NErr: 3712, Coverage: map[string]float64{}, Total: 0},
		{Signal: target.SigTCNT, NErr: 3712, Coverage: map[string]float64{}, Total: 0},
	}
}
