package paper

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/target"
)

// TestTable2ExposuresReproduceExactly feeds Table 1 into the framework
// and checks every signal error exposure against Table 2 at the paper's
// printed precision (3 decimals).
func TestTable2ExposuresReproduceExactly(t *testing.T) {
	p := Table1()
	for sig, want := range Table2Exposures() {
		got, err := p.SignalExposure(sig)
		if err != nil {
			t.Fatalf("SignalExposure(%s): %v", sig, err)
		}
		if math.Abs(got-want) >= 0.0005 {
			t.Errorf("exposure(%s) = %.4f, want %.3f (Table 2)", sig, got, want)
		}
	}
}

// TestTable5ImpactsReproduceExactly checks every impact on TOC2 against
// Table 5 at printed precision.
func TestTable5ImpactsReproduceExactly(t *testing.T) {
	p := Table1()
	for sig, want := range Table5Impacts() {
		got, err := core.Impact(p, sig, target.SigTOC2)
		if err != nil {
			t.Fatalf("Impact(%s): %v", sig, err)
		}
		if math.Abs(got-want) >= 0.0005 {
			t.Errorf("impact(%s -> TOC2) = %.4f, want %.3f (Table 5)", sig, got, want)
		}
	}
	// TOC2 on itself: "one could say that the impact is 1.0".
	got, err := core.Impact(p, target.SigTOC2, target.SigTOC2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("impact(TOC2 -> TOC2) = %v, want 1", got)
	}
}

// TestFigure4ImpactTree reproduces the impact tree for pulscnt: exactly
// two propagation paths to TOC2 with the published weights, combining to
// the published impact 0.021.
func TestFigure4ImpactTree(t *testing.T) {
	p := Table1()
	tree, err := core.BuildImpactTree(p, target.SigPulscnt)
	if err != nil {
		t.Fatal(err)
	}
	paths := tree.PathsTo(target.SigTOC2)
	// Figure 4 draws two paths. Exhaustive enumeration finds one more —
	// pulscnt → i → mscnt → SetValue → ... — whose weight is 0 through
	// the zero-permeability i→mscnt pair; the figure omits it. Both
	// published paths must be present with their published weights, and
	// anything extra must weigh zero.
	if len(paths) < 2 {
		t.Fatalf("paths to TOC2 = %d, want >= 2 (Figure 4)", len(paths))
	}
	want := Figure4Weights()
	wantLen := map[model.SignalID]int{target.SigI: 5, target.SigSetValue: 4}
	seen := map[model.SignalID]bool{}
	for _, path := range paths {
		firstHop := path.Signals[1]
		w, ok := want[firstHop]
		if ok && !seen[firstHop] && len(path.Signals) == wantLen[firstHop] {
			seen[firstHop] = true
			if math.Abs(path.Weight-w) >= 0.0005 {
				t.Errorf("weight via %s = %.4f, want %.3f", firstHop, path.Weight, w)
			}
			continue
		}
		if path.Weight != 0 {
			t.Errorf("extra path %v has nonzero weight %v", path.Signals, path.Weight)
		}
	}
	for hop := range want {
		if !seen[hop] {
			t.Errorf("published Figure 4 path via %s not found", hop)
		}
	}
	if imp := core.ImpactFromPaths(paths); math.Abs(imp-0.021) >= 0.0005 {
		t.Errorf("combined impact = %.4f, want 0.021", imp)
	}

	// The w1 path is exactly pulscnt → i → SetValue → OutValue → TOC2.
	for _, path := range paths {
		if path.Signals[1] != target.SigI || len(path.Signals) != 5 {
			continue
		}
		wantSig := []model.SignalID{
			target.SigPulscnt, target.SigI, target.SigSetValue,
			target.SigOutValue, target.SigTOC2,
		}
		for i := range wantSig {
			if path.Signals[i] != wantSig[i] {
				t.Fatalf("w1 path = %v, want %v", path.Signals, wantSig)
			}
		}
	}
}

func asSet(ids []model.SignalID) map[model.SignalID]bool {
	out := make(map[model.SignalID]bool, len(ids))
	for _, id := range ids {
		out[id] = true
	}
	return out
}

// TestPASelectionReproduces runs the PA placement rules on the paper
// matrix and checks the selected signals are exactly the paper's PA set.
func TestPASelectionReproduces(t *testing.T) {
	pr, err := core.BuildProfile(Table1())
	if err != nil {
		t.Fatal(err)
	}
	sel := core.SelectPA(pr, core.DefaultThresholds())
	got := asSet(sel.Selected())
	want := asSet(PASelection())
	for s := range want {
		if !got[s] {
			t.Errorf("PA selection missing %s", s)
		}
	}
	for s := range got {
		if !want[s] {
			t.Errorf("PA selection includes %s, the paper did not", s)
		}
	}
}

// TestExtendedSelectionReproducesEHSet runs the extended rules and
// checks they re-derive the EH set (Section 10).
func TestExtendedSelectionReproducesEHSet(t *testing.T) {
	pr, err := core.BuildProfile(Table1())
	if err != nil {
		t.Fatal(err)
	}
	sel := core.SelectExtended(pr, core.DefaultThresholds())
	got := asSet(sel.Selected())
	want := asSet(ExtendedSelection())
	for s := range want {
		if !got[s] {
			t.Errorf("extended selection missing %s", s)
		}
	}
	for s := range got {
		if !want[s] {
			t.Errorf("extended selection includes %s, the paper did not", s)
		}
	}
}

// TestEHSelectionReproduces codifies the Section 5.1 heuristic and
// checks it yields the paper's seven signals.
func TestEHSelectionReproduces(t *testing.T) {
	sel := core.SelectEH(System())
	got := asSet(sel.Selected())
	want := asSet(EHSelection())
	for s := range want {
		if !got[s] {
			t.Errorf("EH selection missing %s", s)
		}
	}
	for s := range got {
		if !want[s] {
			t.Errorf("EH selection includes %s, the paper did not", s)
		}
	}
}

// TestTable2Motivations checks the rule engine reports the paper's
// motivations for the rejected signals of Table 2.
func TestTable2Motivations(t *testing.T) {
	pr, err := core.BuildProfile(Table1())
	if err != nil {
		t.Fatal(err)
	}
	sel := core.SelectPA(pr, core.DefaultThresholds())

	check := func(sig model.SignalID, want core.Rule) {
		t.Helper()
		c, err := sel.Candidate(sig)
		if err != nil {
			t.Fatal(err)
		}
		if c.Selected {
			t.Errorf("%s selected, paper rejected it", sig)
		}
		found := false
		for _, r := range c.Rules {
			if r == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s rules = %v, want %q", sig, c.Rules, want)
		}
	}
	// ms_slot_nbr: no onward propagation (the paper: zero permeability
	// onwards / no effect on the output).
	check(target.SigMsSlotNbr, core.RejectZeroImpact)
	// TOC2: "errors here most likely come from OutValue".
	check(target.SigTOC2, core.RejectSystemOutput)
	// slow_speed: "selected EA's not geared at boolean values".
	check(target.SigSlowSpeed, core.RejectBoolean)
	// IsValue, mscnt, stopped: zero exposure.
	for _, s := range []model.SignalID{target.SigIsValue, target.SigMscnt} {
		c, err := sel.Candidate(s)
		if err != nil {
			t.Fatal(err)
		}
		if c.Selected {
			t.Errorf("%s selected by PA, paper rejected it", s)
		}
	}
}

// TestModuleMeasuresSanity computes the module-level measures on the
// paper matrix — no published values exist, but the relative ordering
// must match the obvious reading of Table 1 (V_REG and PRES_A are the
// most permeable modules, PRES_S fully contains).
func TestModuleMeasuresSanity(t *testing.T) {
	p := Table1()
	rel := map[model.ModuleID]float64{}
	for _, m := range []model.ModuleID{
		target.ModClock, target.ModDistS, target.ModCalc,
		target.ModPresS, target.ModVReg, target.ModPresA,
	} {
		v, err := p.RelativePermeability(m)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 || v > 1 {
			t.Errorf("relative permeability of %s = %v outside [0,1]", m, v)
		}
		rel[m] = v
	}
	if rel[target.ModPresS] != 0 {
		t.Errorf("PRES_S relative permeability = %v, want 0 (full containment)", rel[target.ModPresS])
	}
	if rel[target.ModVReg] <= rel[target.ModDistS] {
		t.Errorf("V_REG (%v) must be more permeable than DIST_S (%v)", rel[target.ModVReg], rel[target.ModDistS])
	}
	if rel[target.ModPresA] <= rel[target.ModCalc] {
		t.Errorf("PRES_A (%v) must be more permeable than CALC (%v)", rel[target.ModPresA], rel[target.ModCalc])
	}
}

// TestTable4FixtureConsistent sanity-checks the published Table 4 rows.
func TestTable4FixtureConsistent(t *testing.T) {
	rows := Table4()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.NErr
		for ea, c := range r.Coverage {
			if c < 0 || c > 1 {
				t.Errorf("%s coverage of %s = %v outside [0,1]", r.Signal, ea, c)
			}
			if c > r.Total+1e-9 {
				t.Errorf("%s: EA %s coverage %v exceeds row total %v", r.Signal, ea, c, r.Total)
			}
		}
	}
	if total != 9280 {
		t.Errorf("total active errors = %d, want 9280 (Table 4 'All')", total)
	}
}

// TestPaperMatrixJSONRoundTrip locks the fixture's serialized form: the
// published Table 1 must survive the JSON round trip bit-exactly.
func TestPaperMatrixJSONRoundTrip(t *testing.T) {
	p := Table1()
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.UnmarshalPermeability(System(), data)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range System().Edges() {
		if got.Get(e) != p.Get(e) {
			t.Errorf("edge %v: %v != %v after round trip", e, got.Get(e), p.Get(e))
		}
	}
	// 25 entries serialized, none dropped.
	if n := strings.Count(string(data), `"module"`); n != 25 {
		t.Errorf("serialized %d entries, want 25", n)
	}
}
