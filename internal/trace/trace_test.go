package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func mkTrace(t *testing.T, vals map[model.SignalID][]model.Word) *Trace {
	t.Helper()
	var sigs []model.SignalID
	n := -1
	for s, col := range vals {
		sigs = append(sigs, s)
		if n == -1 {
			n = len(col)
		} else if len(col) != n {
			t.Fatal("uneven columns in fixture")
		}
	}
	// Deterministic order.
	for i := 0; i < len(sigs); i++ {
		for j := i + 1; j < len(sigs); j++ {
			if sigs[j] < sigs[i] {
				sigs[i], sigs[j] = sigs[j], sigs[i]
			}
		}
	}
	tr := NewTrace(sigs, n)
	for k := 0; k < n; k++ {
		tr.Append(func(s model.SignalID) model.Word { return vals[s][k] })
	}
	return tr
}

func TestAppendAndValue(t *testing.T) {
	tr := mkTrace(t, map[model.SignalID][]model.Word{
		"a": {1, 2, 3},
		"b": {10, 20, 30},
	})
	if got := tr.Len(); got != 3 {
		t.Errorf("Len() = %d, want 3", got)
	}
	if got := tr.Value("a", 1); got != 2 {
		t.Errorf("Value(a,1) = %d, want 2", got)
	}
	if got := tr.Value("b", 2); got != 30 {
		t.Errorf("Value(b,2) = %d, want 30", got)
	}
	col := tr.Column("a")
	col[0] = 99
	if got := tr.Value("a", 0); got != 1 {
		t.Error("Column() must return a copy")
	}
}

func TestDuplicateSignalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTrace with duplicate signals did not panic")
		}
	}()
	NewTrace([]model.SignalID{"x", "x"}, 1)
}

func TestUnknownSignalPanics(t *testing.T) {
	tr := NewTrace([]model.SignalID{"a"}, 1)
	defer func() {
		if recover() == nil {
			t.Error("Value of unknown signal did not panic")
		}
	}()
	tr.Value("ghost", 0)
}

func TestFirstDifference(t *testing.T) {
	golden := mkTrace(t, map[model.SignalID][]model.Word{
		"s": {5, 5, 5, 5, 5},
	})
	tests := []struct {
		name string
		inj  []model.Word
		want int
	}{
		{"identical", []model.Word{5, 5, 5, 5, 5}, NoDifference},
		{"differs at 0", []model.Word{4, 5, 5, 5, 5}, 0},
		{"differs at 3", []model.Word{5, 5, 5, 9, 5}, 3},
		{"differs at last", []model.Word{5, 5, 5, 5, 6}, 4},
		{"shorter identical prefix", []model.Word{5, 5, 5}, NoDifference},
		{"shorter with diff", []model.Word{5, 7}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			inj := mkTrace(t, map[model.SignalID][]model.Word{"s": tt.inj})
			if got := FirstDifference(golden, inj, "s"); got != tt.want {
				t.Errorf("FirstDifference = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestDeviations(t *testing.T) {
	golden := mkTrace(t, map[model.SignalID][]model.Word{
		"a": {1, 2, 3},
		"b": {1, 2, 3},
		"c": {1, 2, 3},
	})
	inj := mkTrace(t, map[model.SignalID][]model.Word{
		"a": {1, 2, 3},
		"b": {1, 9, 3},
	})
	dev := Deviations(golden, inj)
	if got, ok := dev["a"]; !ok || got != NoDifference {
		t.Errorf("dev[a] = %d,%v want NoDifference", got, ok)
	}
	if got := dev["b"]; got != 1 {
		t.Errorf("dev[b] = %d, want 1", got)
	}
	if _, ok := dev["c"]; ok {
		t.Error("dev[c] present although c is not in the injected trace")
	}
}

// Property: FirstDifference returns the minimal index of disagreement.
func TestQuickFirstDifferenceMinimality(t *testing.T) {
	f := func(base []uint8, flipAt uint16) bool {
		if len(base) == 0 {
			return true
		}
		idx := int(flipAt) % len(base)
		g := NewTrace([]model.SignalID{"s"}, len(base))
		i := NewTrace([]model.SignalID{"s"}, len(base))
		for k, b := range base {
			v := model.Word(b)
			g.Append(func(model.SignalID) model.Word { return v })
			iv := v
			if k == idx {
				iv = v + 1
			}
			i.Append(func(model.SignalID) model.Word { return iv })
		}
		return FirstDifference(g, i, "s") == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecorderSamplesOnPeriod(t *testing.T) {
	sys, err := model.NewBuilder("rec").
		AddSignal("in", model.Uint(16), model.AsSystemInput()).
		AddSignal("out", model.Uint(16), model.AsSystemOutput(1)).
		AddModule("M", model.In("in"), model.Out("out")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	bus := model.NewBus(sys)
	rec := NewRecorder(bus, []model.SignalID{"in"}, 10, 100)
	for now := int64(0); now < 35; now++ {
		bus.Poke("in", model.Word(now))
		rec.Hook(now)
	}
	tr := rec.Trace()
	if got := tr.Len(); got != 4 { // t = 0, 10, 20, 30
		t.Fatalf("Len() = %d, want 4", got)
	}
	want := []model.Word{0, 10, 20, 30}
	for i, w := range want {
		if got := tr.Value("in", i); got != w {
			t.Errorf("sample %d = %d, want %d", i, got, w)
		}
	}
}

func TestRecorderRejectsBadPeriod(t *testing.T) {
	sys, err := model.NewBuilder("rec").
		AddSignal("in", model.Uint(16), model.AsSystemInput()).
		AddSignal("out", model.Uint(16), model.AsSystemOutput(1)).
		AddModule("M", model.In("in"), model.Out("out")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewRecorder(period 0) did not panic")
		}
	}()
	NewRecorder(model.NewBus(sys), []model.SignalID{"in"}, 0, 10)
}
