// Package trace records signal traces during a run and implements the
// Golden Run Comparison of the paper's fault-injection method (Section
// 5.3): the trace of each signal in an injection run is compared against
// the corresponding golden-run trace, and "the comparison stopped as soon
// as the first difference ... was encountered".
//
// Traces are columnar (one slice per signal) and sampled at a fixed
// period, matching the target's major control cycle, so that golden and
// injection runs line up sample-for-sample.
package trace

import (
	"fmt"

	"repro/internal/model"
)

// Trace holds sampled values for a fixed set of signals.
type Trace struct {
	signals []model.SignalID
	index   map[model.SignalID]int
	cols    [][]model.Word
	n       int
}

// NewTrace creates an empty trace over the given signals, pre-sizing each
// column for capacityHint samples.
func NewTrace(signals []model.SignalID, capacityHint int) *Trace {
	t := &Trace{
		signals: append([]model.SignalID(nil), signals...),
		index:   make(map[model.SignalID]int, len(signals)),
		cols:    make([][]model.Word, len(signals)),
	}
	for i, s := range signals {
		if _, dup := t.index[s]; dup {
			panic(fmt.Sprintf("trace: duplicate signal %q", s))
		}
		t.index[s] = i
		t.cols[i] = make([]model.Word, 0, capacityHint)
	}
	return t
}

// Signals returns the traced signals in column order.
func (t *Trace) Signals() []model.SignalID {
	return append([]model.SignalID(nil), t.signals...)
}

// Len returns the number of samples recorded.
func (t *Trace) Len() int { return t.n }

// Append records one sample row; values are read through the provided
// getter (typically Bus.Peek so recording never perturbs the system).
func (t *Trace) Append(get func(model.SignalID) model.Word) {
	for i, s := range t.signals {
		t.cols[i] = append(t.cols[i], get(s))
	}
	t.n++
}

// reset truncates every column to zero length, keeping capacity, so a
// pooled trace can be refilled without reallocating its ~horizon-sized
// sample rows.
func (t *Trace) reset() {
	for i := range t.cols {
		t.cols[i] = t.cols[i][:0]
	}
	t.n = 0
}

// sameSignals reports whether the trace records exactly these signals in
// this column order.
func (t *Trace) sameSignals(signals []model.SignalID) bool {
	if len(t.signals) != len(signals) {
		return false
	}
	for i, s := range signals {
		if t.signals[i] != s {
			return false
		}
	}
	return true
}

// Value returns sample idx of a signal. It panics on unknown signals or
// out-of-range indices — both are harness bugs, not data conditions.
func (t *Trace) Value(sig model.SignalID, idx int) model.Word {
	col := t.column(sig)
	if idx < 0 || idx >= len(col) {
		panic(fmt.Sprintf("trace: sample %d of %q out of range (%d samples)", idx, sig, len(col)))
	}
	return col[idx]
}

// Column returns a copy of all samples of one signal.
func (t *Trace) Column(sig model.SignalID) []model.Word {
	return append([]model.Word(nil), t.column(sig)...)
}

func (t *Trace) column(sig model.SignalID) []model.Word {
	i, ok := t.index[sig]
	if !ok {
		panic(fmt.Sprintf("trace: unknown signal %q", sig))
	}
	return t.cols[i]
}

// Has reports whether the trace records the signal.
func (t *Trace) Has(sig model.SignalID) bool {
	_, ok := t.index[sig]
	return ok
}

// NoDifference is returned by FirstDifference when two traces agree over
// their common prefix.
const NoDifference = -1

// FirstDifference returns the index of the first sample at which the two
// traces disagree on sig, comparing over the shorter common length. It
// returns NoDifference if they agree.
func FirstDifference(golden, injected *Trace, sig model.SignalID) int {
	g, i := golden.column(sig), injected.column(sig)
	n := len(g)
	if len(i) < n {
		n = len(i)
	}
	for k := 0; k < n; k++ {
		if g[k] != i[k] {
			return k
		}
	}
	return NoDifference
}

// Deviations runs FirstDifference for every signal of the golden trace,
// returning the first-difference index per signal (NoDifference if the
// signal never deviated). Signals missing from the injected trace are
// skipped.
func Deviations(golden, injected *Trace) map[model.SignalID]int {
	out := make(map[model.SignalID]int, len(golden.signals))
	for _, s := range golden.signals {
		if !injected.Has(s) {
			continue
		}
		out[s] = FirstDifference(golden, injected, s)
	}
	return out
}

// Recorder samples a bus into a Trace at a fixed period. Attach Hook as a
// scheduler post-slot hook.
//
// The recorder resolves its signals to dense bus indices once, so each
// sample is a slice walk with no map lookups, and it can be re-targeted
// at another run with ResetFor, reusing its column storage — injection
// campaigns pool recorders instead of reallocating ~30 000 trace rows
// per run.
type Recorder struct {
	bus      *model.Bus
	trace    *Trace
	periodMs int64
	idxs     []int // dense bus index per trace column
}

// NewRecorder records the given signals from the bus every periodMs of
// scheduler time, with column capacity for horizonMs of samples.
func NewRecorder(bus *model.Bus, signals []model.SignalID, periodMs, horizonMs int64) *Recorder {
	if periodMs <= 0 {
		panic("trace: periodMs must be positive")
	}
	hint := int(horizonMs/periodMs) + 1
	r := &Recorder{
		bus:      bus,
		trace:    NewTrace(signals, hint),
		periodMs: periodMs,
	}
	r.resolve(signals)
	return r
}

// resolve caches the dense bus index of every traced signal.
func (r *Recorder) resolve(signals []model.SignalID) {
	r.idxs = r.idxs[:0]
	sys := r.bus.System()
	for _, s := range signals {
		i, ok := sys.SignalIndex(s)
		if !ok {
			panic(fmt.Sprintf("trace: unknown signal %q", s))
		}
		r.idxs = append(r.idxs, i)
	}
}

// ResetFor re-targets the recorder at another run: the trace is
// truncated (column capacity retained when the signal set is unchanged)
// and the recorder rebound to the given bus. The previously recorded
// trace must no longer be referenced by the caller.
func (r *Recorder) ResetFor(bus *model.Bus, signals []model.SignalID, periodMs, horizonMs int64) {
	if periodMs <= 0 {
		panic("trace: periodMs must be positive")
	}
	r.periodMs = periodMs
	if r.trace.sameSignals(signals) {
		r.trace.reset()
	} else {
		r.trace = NewTrace(signals, int(horizonMs/periodMs)+1)
	}
	r.bus = bus
	r.resolve(signals)
}

// Hook is the scheduler hook: it samples whenever nowMs falls on the
// recording period.
func (r *Recorder) Hook(nowMs int64) {
	if nowMs%r.periodMs != 0 {
		return
	}
	t := r.trace
	for i, idx := range r.idxs {
		t.cols[i] = append(t.cols[i], r.bus.PeekIdx(idx))
	}
	t.n++
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Trace { return r.trace }
