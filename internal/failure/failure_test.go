package failure

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/physics"
)

func TestMaxRetardForceCurve(t *testing.T) {
	l := DefaultLimits()
	g := physics.StandardGravity

	// Slow engagement: floor applies (1.2 g of weight).
	slow := l.MaxRetardForceN(10000, 30)
	if want := 1.2 * 10000 * g; slow != want {
		t.Errorf("F_max(10t, 30 m/s) = %.0f, want floor %.0f", slow, want)
	}

	// Very fast engagement: cap applies (3.2 g of weight).
	fast := l.MaxRetardForceN(10000, 200)
	if want := 3.2 * 10000 * g; fast != want {
		t.Errorf("F_max(10t, 200 m/s) = %.0f, want cap %.0f", fast, want)
	}

	// Mid-range: 1.8x the nominal 250 m stop force.
	mid := l.MaxRetardForceN(10000, 80)
	if want := 1.8 * 10000 * 80 * 80 / (2 * 250); mid != want {
		t.Errorf("F_max(10t, 80 m/s) = %.0f, want %.0f", mid, want)
	}
}

// Property: F_max is monotone in mass and velocity within the envelope.
func TestQuickForceLimitMonotone(t *testing.T) {
	l := DefaultLimits()
	f := func(mSel, vSel uint8) bool {
		m := 8000 + float64(mSel%40)*250
		v := 40 + float64(vSel%40)
		return l.MaxRetardForceN(m+250, v) >= l.MaxRetardForceN(m, v) &&
			l.MaxRetardForceN(m, v+1) >= l.MaxRetardForceN(m, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func stoppedPlant(t *testing.T, duty int64) *physics.Plant {
	t.Helper()
	pl := physics.New(physics.DefaultParams(12000, 60, 1))
	pl.SetValveDuty(duty)
	for i := 0; i < 60000 && !pl.Stopped(); i++ {
		pl.StepMs(1)
	}
	return pl
}

// nominalDuty returns the valve duty approximating a constant-force stop
// in ~260 m for the given scenario.
func nominalDuty(p physics.Params) int64 {
	force := p.MassKg * p.EngageVelocityMps * p.EngageVelocityMps / (2 * 260)
	duty := force / p.BrakeGain * 255
	if duty > 255 {
		duty = 255
	}
	return int64(duty)
}

func TestClassifySuccessfulArrest(t *testing.T) {
	pl := stoppedPlant(t, nominalDuty(physics.DefaultParams(12000, 60, 1)))
	rep := Classify(pl, pl.Stopped(), DefaultLimits())
	if rep.Failed() {
		t.Fatalf("nominal arrest classified as failure: %v", rep)
	}
	if !strings.HasPrefix(rep.String(), "OK") {
		t.Errorf("String() = %q, want OK prefix", rep.String())
	}
	if rep.StoppingDistanceM <= 0 || rep.MaxForceN <= 0 {
		t.Errorf("report missing observables: %+v", rep)
	}
}

func TestClassifyNotArrested(t *testing.T) {
	pl := physics.New(physics.DefaultParams(12000, 60, 1))
	pl.StepMs(100) // brakes never applied, still rolling
	rep := Classify(pl, false, DefaultLimits())
	if !rep.Failed() {
		t.Fatal("non-arrested run classified as success")
	}
	if !rep.Has(ViolationNotArrested) {
		t.Errorf("violations = %v, want not-arrested", rep.Violations)
	}
	if !strings.HasPrefix(rep.String(), "FAILURE") {
		t.Errorf("String() = %q, want FAILURE prefix", rep.String())
	}
}

func TestClassifyDistanceViolation(t *testing.T) {
	// Very weak braking: aircraft rolls past 335 m before stopping.
	pl := physics.New(physics.DefaultParams(16000, 80, 1))
	pl.SetValveDuty(20)
	for i := 0; i < 120000 && !pl.Stopped(); i++ {
		pl.StepMs(1)
	}
	rep := Classify(pl, pl.Stopped(), DefaultLimits())
	if !rep.Has(ViolationDistance) {
		t.Errorf("violations = %v, want distance violation at %.0f m", rep.Violations, rep.StoppingDistanceM)
	}
}

func TestClassifyForceViolation(t *testing.T) {
	// Full brake slammed on a light, slow aircraft exceeds its F_max
	// floor but stays under 3.5 g only if gains are moderate; verify the
	// force check fires when MaxForceN crosses the limit.
	l := DefaultLimits()
	pl := stoppedPlant(t, 255)
	rep := Classify(pl, pl.Stopped(), l)
	if rep.MaxForceN >= rep.ForceLimitN && !rep.Has(ViolationForce) {
		t.Errorf("force %.0f >= limit %.0f but no violation", rep.MaxForceN, rep.ForceLimitN)
	}
	if rep.MaxForceN < rep.ForceLimitN && rep.Has(ViolationForce) {
		t.Errorf("force %.0f < limit %.0f but violation reported", rep.MaxForceN, rep.ForceLimitN)
	}
}

func TestViolationStrings(t *testing.T) {
	for _, v := range []Violation{ViolationRetardation, ViolationForce, ViolationDistance, ViolationNotArrested, Violation(99)} {
		if v.String() == "" {
			t.Errorf("Violation(%d).String() empty", int(v))
		}
	}
}

func TestReportHas(t *testing.T) {
	rep := Report{Violations: []Violation{ViolationDistance}}
	if !rep.Has(ViolationDistance) {
		t.Error("Has(distance) = false")
	}
	if rep.Has(ViolationForce) {
		t.Error("Has(force) = true, want false")
	}
}
