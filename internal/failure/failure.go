// Package failure classifies arrestment outcomes against the system
// specification (paper Section 4.2, from MIL-A-38202C): a run fails if
//
//  1. retardation ever exceeds 3.5 g,
//  2. the retardation force ever exceeds F_max, a function of aircraft
//     mass and engaging velocity, or
//  3. the aircraft is not arrested within 335 m of runway.
//
// The exact F_max curve of the MIL specification is not public; we
// substitute a curve of the same form — proportional to the force needed
// for a nominal-distance stop, with floor and ceiling — documented in
// DESIGN.md §5. Every fault-free test case passes with margin; what
// matters for reproduction is that injected errors can push runs across
// the limits so that c_fail/c_nofail (Figure 3) are meaningful.
package failure

import (
	"fmt"
	"strings"

	"repro/internal/physics"
)

// Violation identifies one violated constraint.
type Violation int

// Constraint violations, numbered as in the paper's Section 4.2 list.
const (
	ViolationRetardation Violation = iota + 1
	ViolationForce
	ViolationDistance
	ViolationNotArrested
)

// String implements fmt.Stringer.
func (v Violation) String() string {
	switch v {
	case ViolationRetardation:
		return "retardation limit exceeded (r >= 3.5 g)"
	case ViolationForce:
		return "retardation force limit exceeded (F_ret >= F_max)"
	case ViolationDistance:
		return "stopping distance exceeded (d >= 335 m)"
	case ViolationNotArrested:
		return "aircraft not arrested within the observation window"
	default:
		return "unknown violation"
	}
}

// Limits holds the specification constraints.
type Limits struct {
	// MaxRetardationG is the retardation limit in g (3.5 per spec).
	MaxRetardationG float64
	// MaxStoppingDistanceM is the runway limit in meters (335 per spec).
	MaxStoppingDistanceM float64
	// NominalStopDistanceM parameterizes the F_max curve: the force
	// needed to stop in this distance, times ForceMargin, is allowed.
	NominalStopDistanceM float64
	// ForceMargin scales the nominal stopping force to get F_max.
	ForceMargin float64
	// MinForceG and MaxForceG floor/cap F_max in units of aircraft
	// weight.
	MinForceG, MaxForceG float64
}

// DefaultLimits returns the specification limits used throughout the
// reproduction.
func DefaultLimits() Limits {
	return Limits{
		MaxRetardationG:      3.5,
		MaxStoppingDistanceM: 335,
		NominalStopDistanceM: 250,
		ForceMargin:          1.8,
		MinForceG:            1.2,
		MaxForceG:            3.2,
	}
}

// MaxRetardForceN returns F_max for an aircraft of the given mass and
// engaging velocity: the maximum allowed retardation force.
func (l Limits) MaxRetardForceN(massKg, engageVelocityMps float64) float64 {
	// Force for a constant-deceleration stop in NominalStopDistanceM.
	nominal := massKg * engageVelocityMps * engageVelocityMps / (2 * l.NominalStopDistanceM)
	f := l.ForceMargin * nominal
	if min := l.MinForceG * massKg * physics.StandardGravity; f < min {
		f = min
	}
	if max := l.MaxForceG * massKg * physics.StandardGravity; f > max {
		f = max
	}
	return f
}

// Report is the outcome classification of one arrestment run.
type Report struct {
	// Violations lists every violated constraint (empty on success).
	Violations []Violation
	// Arrested reports whether the aircraft stopped inside the window.
	Arrested bool
	// MaxRetardationG, MaxForceN and StoppingDistanceM are the observed
	// extremes.
	MaxRetardationG   float64
	MaxForceN         float64
	StoppingDistanceM float64
	// ForceLimitN is the F_max applied to this run.
	ForceLimitN float64
	// ArrestTimeS is the plant time at classification.
	ArrestTimeS float64
}

// Failed reports whether any constraint was violated.
func (r Report) Failed() bool { return len(r.Violations) > 0 }

// Has reports whether a specific violation occurred.
func (r Report) Has(v Violation) bool {
	for _, got := range r.Violations {
		if got == v {
			return true
		}
	}
	return false
}

// String summarizes the report on one line.
func (r Report) String() string {
	if !r.Failed() {
		return fmt.Sprintf("OK: arrested in %.1f m, max %.2f g, max force %.0f kN",
			r.StoppingDistanceM, r.MaxRetardationG, r.MaxForceN/1000)
	}
	parts := make([]string, 0, len(r.Violations))
	for _, v := range r.Violations {
		parts = append(parts, v.String())
	}
	return "FAILURE: " + strings.Join(parts, "; ")
}

// Classify evaluates a finished (or timed-out) run against the limits.
// arrested reports whether the plant reached standstill within the
// observation window.
func Classify(pl *physics.Plant, arrested bool, l Limits) Report {
	p := pl.Params()
	rep := Report{
		Arrested:          arrested,
		MaxRetardationG:   pl.MaxRetardationG(),
		MaxForceN:         pl.MaxForceN(),
		StoppingDistanceM: pl.Distance(),
		ForceLimitN:       l.MaxRetardForceN(p.MassKg, p.EngageVelocityMps),
		ArrestTimeS:       pl.TimeS(),
	}
	if rep.MaxRetardationG >= l.MaxRetardationG {
		rep.Violations = append(rep.Violations, ViolationRetardation)
	}
	if rep.MaxForceN >= rep.ForceLimitN {
		rep.Violations = append(rep.Violations, ViolationForce)
	}
	if rep.StoppingDistanceM >= l.MaxStoppingDistanceM {
		rep.Violations = append(rep.Violations, ViolationDistance)
	}
	if !arrested {
		rep.Violations = append(rep.Violations, ViolationNotArrested)
	}
	return rep
}
