package analytic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/paper"
)

const tol = 1e-9

// TestArrestmentImpactsMatchTrees pins the tentpole equivalence: on the
// paper's target (whose positive-permeability graph is acyclic despite
// the structural i→i and i↔mscnt cycles), the series solver reproduces
// every tree-enumerated Eq. 2 impact.
func TestArrestmentImpactsMatchTrees(t *testing.T) {
	p := paper.Table1()
	sys := p.System()
	e := New()
	for _, from := range sys.SignalIDs() {
		row, err := e.Impacts(p, from)
		if err != nil {
			t.Fatalf("Impacts(%s): %v", from, err)
		}
		for _, to := range sys.SignalIDs() {
			want, err := core.Impact(p, from, to)
			if err != nil {
				t.Fatalf("core.Impact(%s,%s): %v", from, to, err)
			}
			ti, _ := sys.SignalIndex(to)
			if got := row[ti]; math.Abs(got-want) > tol {
				t.Errorf("impact %s->%s: analytic %v, tree %v", from, to, got, want)
			}
		}
	}
}

// TestArrestmentRankingsByteIdentical asserts the acceptance criterion:
// every ranking (exposure, impact, criticality) orders the signals
// identically to core.BuildProfile.
func TestArrestmentRankingsByteIdentical(t *testing.T) {
	p := paper.Table1()
	ref, err := core.BuildProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New().Profile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []core.Metric{core.ByExposure, core.ByImpact, core.ByCriticality} {
		want := ref.Ranked(m)
		have := got.Ranked(m)
		if len(want) != len(have) {
			t.Fatalf("%s: ranked %d signals, want %d", m, len(have), len(want))
		}
		for i := range want {
			if want[i].Signal != have[i].Signal {
				t.Errorf("%s rank %d: analytic %s, tree %s", m, i, have[i].Signal, want[i].Signal)
			}
		}
	}
	// Exposure and witness permeability are computed from the same sums
	// in the same order — they must be bit-equal, not just close.
	for _, s := range p.System().SignalIDs() {
		w, _ := ref.Signal(s)
		h, _ := got.Signal(s)
		if w.Exposure != h.Exposure || w.MaxInPermeability != h.MaxInPermeability {
			t.Errorf("%s: exposure/witness %v/%v, want %v/%v",
				s, h.Exposure, h.MaxInPermeability, w.Exposure, w.MaxInPermeability)
		}
		if math.Abs(w.Criticality-h.Criticality) > tol {
			t.Errorf("%s: criticality %v, want %v", s, h.Criticality, w.Criticality)
		}
	}
}

// TestGridMatchesTrees cross-checks the series solver against tree
// enumeration on a reconvergent grid (128 paths per source) with
// irregular permeabilities.
func TestGridMatchesTrees(t *testing.T) {
	sys, p := Grid(8, 3)
	e := New()
	for _, from := range sys.SystemInputs() {
		row, err := e.Impacts(p, from)
		if err != nil {
			t.Fatal(err)
		}
		for _, to := range sys.SystemOutputs() {
			want, err := core.Impact(p, from, to)
			if err != nil {
				t.Fatal(err)
			}
			ti, _ := sys.SignalIndex(to)
			if got := row[ti]; math.Abs(got-want) > tol {
				t.Errorf("impact %s->%s: analytic %v, tree %v", from, to, got, want)
			}
		}
	}
}

// TestRandomDAGsMatchTrees fuzzes layered DAGs with random shapes and
// permeabilities (including exact zeros and ones) against the tree
// reference.
func TestRandomDAGsMatchTrees(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sys, p := randomLayeredDAG(rng)
		e := New()
		for _, from := range sys.SignalIDs() {
			row, err := e.Impacts(p, from)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, to := range sys.SignalIDs() {
				want, err := core.Impact(p, from, to)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				ti, _ := sys.SignalIndex(to)
				if got := row[ti]; math.Abs(got-want) > tol {
					t.Errorf("seed %d: impact %s->%s: analytic %v, tree %v", seed, from, to, got, want)
				}
			}
		}
	}
}

func randomLayeredDAG(rng *rand.Rand) (*model.System, *core.Permeability) {
	layers := 3 + rng.Intn(3)
	width := 2 + rng.Intn(3)
	sys, p := Grid(layers, width)
	for _, e := range sys.Edges() {
		var v float64
		switch rng.Intn(5) {
		case 0:
			v = 0 // dead edge: must drop out exactly
		case 1:
			v = 1 // certain edge: saturation paths
		default:
			v = rng.Float64()
		}
		if err := p.SetEdge(e, v); err != nil {
			panic(err)
		}
	}
	return sys, p
}

// TestSaturatedPathIsExactlyOne: a full-permeability path must yield
// impact exactly 1.0 (Eq. 2's product contains a zero factor), not
// 1-minus-epsilon.
func TestSaturatedPathIsExactlyOne(t *testing.T) {
	sys, p := Grid(4, 2)
	for _, e := range sys.Edges() {
		if err := p.SetEdge(e, 1); err != nil {
			t.Fatal(err)
		}
	}
	imp, err := New().Impact(p, "s_0_0", "s_3_0")
	if err != nil {
		t.Fatal(err)
	}
	if imp != 1 {
		t.Fatalf("saturated impact = %v, want exactly 1", imp)
	}
}

func TestUnreachableIsExactlyZero(t *testing.T) {
	sys, p := CyclicFixture()
	e := New()
	// out has no outgoing edges; nothing downstream of it.
	row, err := e.Impacts(p, "out")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sys.SignalIDs() {
		i, _ := sys.SignalIndex(s)
		want := 0.0
		if s == "out" {
			want = 1
		}
		if row[i] != want {
			t.Errorf("impact out->%s = %v, want %v", s, row[i], want)
		}
	}
}

// TestCyclicFixtureFixpoint pins the fixpoint solution of the feedback
// fixture against the closed form: P(b) solves
// P(b) = 1 − (1−0.8·0.7)(1 − P(b)·0.4·0.25) = 0.56 + 0.44·0.1·P(b),
// i.e. P(b) = 0.56/(1−0.044), and P(out) = 0.6·P(b).
func TestCyclicFixtureFixpoint(t *testing.T) {
	sys, p := CyclicFixture()
	e := New()
	d, err := e.Diagnose(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Acyclic {
		t.Fatal("cyclic fixture diagnosed acyclic")
	}
	want := map[model.SignalID]float64{
		"in": 1, "a": 0.8,
		"b": 0.56 / (1 - (1-0.56)*CyclicLoopGain),
	}
	want["fb"] = want["b"] * 0.4
	want["out"] = want["b"] * 0.6
	row, err := e.Impacts(p, "in")
	if err != nil {
		t.Fatal(err)
	}
	for s, w := range want {
		i, _ := sys.SignalIndex(s)
		if math.Abs(row[i]-w) > 1e-9 {
			t.Errorf("fixpoint impact in->%s = %v, want %v", s, row[i], w)
		}
	}
	if d2, _ := e.Diagnose(p); d2.Residual != 0 {
		t.Errorf("converged solve left residual %v", d2.Residual)
	}
}

// TestCyclicFixtureAgreesWithMonteCarlo is the documented validation:
// the fixpoint's node-marginal view may overestimate the sampled
// propagation probability on cycles (Harris/FKG), but stays within
// CyclicTolerance on the fixture.
func TestCyclicFixtureAgreesWithMonteCarlo(t *testing.T) {
	sys, p := CyclicFixture()
	e := New()
	for _, from := range sys.SystemInputs() {
		row, err := e.Impacts(p, from)
		if err != nil {
			t.Fatal(err)
		}
		for _, to := range sys.SystemOutputs() {
			mc, err := core.MonteCarloImpact(p, from, to, 200_000, 7)
			if err != nil {
				t.Fatal(err)
			}
			ti, _ := sys.SignalIndex(to)
			got := row[ti]
			if got < mc-0.004 {
				t.Errorf("impact %s->%s: fixpoint %v below Monte Carlo %v (FKG says it must overestimate)", from, to, got, mc)
			}
			if math.Abs(got-mc) > CyclicTolerance {
				t.Errorf("impact %s->%s: fixpoint %v vs Monte Carlo %v exceeds documented tolerance %v",
					from, to, got, mc, CyclicTolerance)
			}
		}
	}
}

// TestConvergenceBounds exercises the solver caps: with MaxTerms too
// small the series reports a residual; with defaults a near-1 edge
// still converges below Tol.
func TestConvergenceBounds(t *testing.T) {
	sys, p := Grid(4, 2)
	for _, e := range sys.Edges() {
		if err := p.SetEdge(e, 0.999); err != nil {
			t.Fatal(err)
		}
	}
	starved := NewWithParams(Params{MaxTerms: 2})
	if _, err := starved.Impacts(p, "s_0_0"); err != nil {
		t.Fatal(err)
	}
	d, err := starved.Diagnose(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Residual <= 0 {
		t.Fatalf("starved solver reported no residual")
	}
	full := New()
	imp, err := full.Impact(p, "s_0_0", "s_3_0")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Impact(p, "s_0_0", "s_3_0")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imp-want) > tol {
		t.Fatalf("near-1 permeabilities: analytic %v, tree %v", imp, want)
	}
	if d, _ := full.Diagnose(p); d.Residual != 0 {
		t.Fatalf("default solver left residual %v", d.Residual)
	}
	// A starved fixpoint must likewise surface its residual.
	_, cp := CyclicFixture()
	tight := NewWithParams(Params{MaxSweeps: 1, FixTol: 1e-15})
	if _, err := tight.Impacts(cp, "in"); err != nil {
		t.Fatal(err)
	}
	if d, _ := tight.Diagnose(cp); d.Residual <= 0 {
		t.Fatalf("starved fixpoint reported no residual")
	}
}

func TestUnknownSignalAndModuleErrors(t *testing.T) {
	p := paper.Table1()
	e := New()
	if _, err := e.Impacts(p, "nope"); err == nil {
		t.Error("Impacts(unknown) succeeded")
	}
	if _, err := e.Impact(p, "PACNT", "nope"); err == nil {
		t.Error("Impact(_, unknown) succeeded")
	}
	if _, err := Sweep(e, p, []model.ModuleID{"NOPE"}, []float64{0.5}, 1); err == nil {
		t.Error("Sweep(unknown module) succeeded")
	}
	if _, err := Sweep(e, p, []model.ModuleID{"CALC"}, []float64{-1}, 1); err == nil {
		t.Error("Sweep(negative factor) succeeded")
	}
}
