package analytic

import (
	"testing"

	"repro/internal/model"
	"repro/internal/paper"
)

// TestIncrementalInvalidation is the FastFlip property: scaling one
// near-source module of the grid re-solves only the rows whose
// downstream cone contains it; every other row is a cache hit.
func TestIncrementalInvalidation(t *testing.T) {
	sys, p := Grid(6, 4)
	n := sys.NumSignals()
	e := New()
	if _, err := e.Profile(p); err != nil {
		t.Fatal(err)
	}
	cold := e.Stats()
	if cold.Misses != uint64(n) || cold.Hits != 0 {
		t.Fatalf("cold profile: %d misses %d hits, want %d misses 0 hits", cold.Misses, cold.Hits, n)
	}

	// M_0_0 reads s_0_0 and s_0_1. Only those two rank-0 sources can
	// reach its inputs (rank-0 signals have no in-edges), so exactly two
	// rows must re-solve.
	scaled, err := p.ScaleModule("M_0_0", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Profile(scaled); err != nil {
		t.Fatal(err)
	}
	warm := e.Stats()
	if misses := warm.Misses - cold.Misses; misses != 2 {
		t.Errorf("incremental re-analysis solved %d rows, want 2", misses)
	}
	if hits := warm.Hits - cold.Hits; hits != uint64(n-2) {
		t.Errorf("incremental re-analysis hit %d rows, want %d", hits, n-2)
	}

	// Cached rows must be bit-equal to a cold engine's solve of the
	// scaled matrix (scaling by a positive factor preserves the active
	// subgraph, hence the sweep order, hence every float op).
	fresh := New()
	for _, s := range sys.SignalIDs() {
		a, err := e.Impacts(scaled, s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.Impacts(scaled, s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %s[%d]: cached %v != fresh %v", s, i, a[i], b[i])
			}
		}
	}
}

// TestRepeatedProfileIsAllHits: re-profiling an unchanged matrix must
// not re-solve anything.
func TestRepeatedProfileIsAllHits(t *testing.T) {
	p := paper.Table1()
	e := New()
	if _, err := e.Profile(p); err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	if _, err := e.Profile(p); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.Misses != before.Misses {
		t.Errorf("re-profile solved %d new rows, want 0", after.Misses-before.Misses)
	}
}

// TestMutatedMatrixIsRecompiled: the engine fingerprints matrix content
// on every call, so in-place mutation (not just ScaleModule copies) is
// picked up.
func TestMutatedMatrixIsRecompiled(t *testing.T) {
	p := paper.Table1()
	e := New()
	before, err := e.Impact(p, "PACNT", "TOC2")
	if err != nil {
		t.Fatal(err)
	}
	p.MustSet("PRES_A", 1, 1, 0.1) // was 0.875
	after, err := e.Impact(p, "PACNT", "TOC2")
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("weakening PRES_A did not lower impact: %v -> %v", before, after)
	}
}

func TestDiagnoseArrestmentAcyclic(t *testing.T) {
	d, err := New().Diagnose(paper.Table1())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Acyclic {
		t.Error("arrestment positive-permeability graph diagnosed cyclic; the series solver should apply")
	}
	if d.ActiveEdges == 0 {
		t.Error("no active edges")
	}
}

// TestSweepDeterministicAcrossWorkers pins the sweep result independent
// of the worker count and consistent with serial per-cell profiling.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	p := paper.Table1()
	mods := p.System().ModuleIDs()
	factors := []float64{0, 0.25, 0.5, 0.75, 1}
	ref, err := Sweep(New(), p, mods, factors, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Cells) != len(mods)*len(factors) {
		t.Fatalf("sweep returned %d cells, want %d", len(ref.Cells), len(mods)*len(factors))
	}
	for _, workers := range []int{2, 8} {
		got, err := Sweep(New(), p, mods, factors, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.BaseTotal != ref.BaseTotal {
			t.Fatalf("workers=%d: base total %v != %v", workers, got.BaseTotal, ref.BaseTotal)
		}
		for i := range ref.Cells {
			if got.Cells[i] != ref.Cells[i] {
				t.Errorf("workers=%d cell %d: %+v != %+v", workers, i, got.Cells[i], ref.Cells[i])
			}
		}
	}
	// Factor 1 must be a no-op cell; factor 0 on a module everything
	// flows through must reduce total criticality.
	for _, c := range ref.Cells {
		if c.Factor == 1 && c.Delta != 0 {
			t.Errorf("factor-1 cell for %s has delta %v, want 0", c.Module, c.Delta)
		}
		if c.Module == model.ModuleID("PRES_A") && c.Factor == 0 && c.Delta >= 0 {
			t.Errorf("zeroing PRES_A should reduce total criticality, delta %v", c.Delta)
		}
	}
}
