package analytic

import (
	"repro/internal/core"
	"repro/internal/model"
)

// Profile computes the full dependability profile — Table 5's exposure,
// per-output impact, max impact, criticality and witness permeability
// for every signal — in one pass over the edges plus one solver row per
// signal, and returns it in the same core.Profile shape the placement
// rules and report tables consume.
//
// Semantics match core.BuildProfile: exposure sums producing-pair
// permeabilities in edge order (Eq. 1, non-weighted), impact is the
// max over per-output impacts in output declaration order, and
// criticality folds C_s = 1 − Π_o (1 − C_o·I(s→o)) (Eq. 4) over the
// outputs in declaration order with the same [0,1] clamp. On systems
// whose positive-permeability graph is acyclic — the arrestment target
// included — the impacts are Eq. 2 within Params.Tol and the rankings
// are identical to the tree-based code (pinned by tests and
// cmd/adaptcheck's analytic mode).
func (e *Engine) Profile(p *core.Permeability) (*core.Profile, error) {
	sc, ctx, err := e.contextFor(p)
	if err != nil {
		return nil, err
	}
	sys := p.System()
	n := sys.NumSignals()
	top := sc.top

	// Exposure (Eq. 1) and witness permeability in one edge pass. The
	// per-signal accumulation order equals core's InEdges order, so the
	// floating-point sums are identical.
	expo := make([]float64, n)
	maxIn := make([]float64, n)
	for i := range top.edges {
		w := ctx.perm[i]
		t := top.eTo[i]
		expo[t] += w
		if w > maxIn[t] {
			maxIn[t] = w
		}
	}

	signals := make([]core.SignalProfile, 0, n)
	for s := 0; s < n; s++ {
		sig := sys.SignalAt(s)
		row := e.rowFor(sc, ctx, int32(s))
		sp := core.SignalProfile{
			Signal:            sig.ID,
			Kind:              sig.Kind,
			IsBool:            sig.IsBool(),
			Exposure:          expo[s],
			MaxInPermeability: maxIn[s],
			ImpactOn:          make(map[model.SignalID]float64, len(top.outIdx)),
		}
		critProd := 1.0
		for oi, o := range top.outIdx {
			imp := row[o]
			sp.ImpactOn[sys.SignalAt(int(o)).ID] = imp
			if imp > sp.Impact {
				sp.Impact = imp
			}
			critProd *= 1 - top.outCrit[oi]*imp
		}
		crit := 1 - critProd
		if crit < 0 {
			crit = 0
		}
		if crit > 1 {
			crit = 1
		}
		sp.Criticality = crit
		signals = append(signals, sp)
	}
	return core.NewProfile(p, signals), nil
}
