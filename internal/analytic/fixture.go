package analytic

import (
	_ "embed"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
)

//go:embed cyclic_fixture.json
var cyclicFixtureJSON []byte

// CyclicLoopGain is the product of the cyclic fixture's feedback-loop
// permeabilities (b→fb times fb→b). The fixpoint solver's
// over-approximation of the sampled propagation probability is bounded
// by gain/(1−gain) relative to the loop entry (docs/analytic.md), which
// with the Monte Carlo noise floor motivates CyclicTolerance.
const CyclicLoopGain = 0.4 * 0.25

// CyclicTolerance is the documented absolute agreement bound between
// the fixpoint solver and MonteCarloImpact on the cyclic fixture, used
// by cmd/adaptcheck's analytic mode and CI.
const CyclicTolerance = 0.05

// CyclicFixture returns a small system whose positive-permeability
// graph has a genuine cycle (b → fb → b through SPLIT and LOOP), so the
// series solver does not apply and the engine must fall back to the
// fixpoint. The wiring is in cyclic_fixture.json — also a test of the
// model JSON loader on cyclic inputs.
func CyclicFixture() (*model.System, *core.Permeability) {
	sys, err := model.UnmarshalSystem(cyclicFixtureJSON)
	if err != nil {
		panic(fmt.Sprintf("analytic: embedded cyclic fixture: %v", err))
	}
	p := core.NewPermeability(sys)
	p.MustSet("SRC", 1, 1, 0.8)   // in → a
	p.MustSet("LOOP", 1, 1, 0.7)  // a → b
	p.MustSet("LOOP", 2, 1, 0.25) // fb → b (closes the loop)
	p.MustSet("SPLIT", 1, 1, 0.4) // b → fb
	p.MustSet("SPLIT", 1, 2, 0.6) // b → out
	return sys, p
}

// Grid returns a layered synthetic system for scaling benchmarks:
// `layers` ranks of `width` signals, every signal of rank r+1 produced
// by a module reading two neighbouring signals of rank r. The
// reconvergent fan-in doubles the simple-path count per layer (2^layers
// paths from a rank-0 signal), which is exactly the shape that blows up
// tree enumeration while the solver's sweeps stay O(edges).
//
// Permeabilities are deterministic pseudo-values in [0.35, 0.85]; the
// last rank's signals are system outputs with criticality spread over
// (0, 1]. Rank-0 module IDs follow "M_0_<i>", so benchmarks can scale
// a near-source module and measure the incremental cone.
func Grid(layers, width int) (*model.System, *core.Permeability) {
	if layers < 2 || width < 2 {
		panic("analytic: Grid needs layers >= 2 and width >= 2")
	}
	b := model.NewBuilder(fmt.Sprintf("grid-%dx%d", layers, width))
	id := func(l, i int) model.SignalID {
		return model.SignalID(fmt.Sprintf("s_%d_%d", l, i))
	}
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			switch l {
			case 0:
				b.AddSignal(id(l, i), model.Uint(16), model.AsSystemInput())
			case layers - 1:
				crit := float64(i+1) / float64(width)
				b.AddSignal(id(l, i), model.Uint(16), model.AsSystemOutput(crit))
			default:
				b.AddSignal(id(l, i), model.Uint(16))
			}
		}
	}
	for l := 1; l < layers; l++ {
		for i := 0; i < width; i++ {
			mid := model.ModuleID(fmt.Sprintf("M_%d_%d", l-1, i))
			b.AddModule(mid,
				model.In(id(l-1, i), id(l-1, (i+1)%width)),
				model.Out(id(l, i)))
		}
	}
	sys := b.MustBuild()
	p := core.NewPermeability(sys)
	k := 0
	for _, e := range sys.Edges() {
		// Deterministic low-discrepancy values: frac(golden ratio · k).
		frac := 0.6180339887498949 * float64(k+1)
		frac -= math.Floor(frac)
		if err := p.SetEdge(e, 0.35+0.5*frac); err != nil {
			panic(err)
		}
		k++
	}
	return sys, p
}
