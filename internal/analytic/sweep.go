package analytic

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/model"
)

// Cell is one point of a what-if sweep: the profile of the system with
// one module's permeabilities scaled by one factor.
type Cell struct {
	Module model.ModuleID
	Factor float64
	// TotalCriticality is Σ_s C_s over every signal — the scalar
	// "criticality mass" the sweep compares across cells.
	TotalCriticality float64
	// Delta is TotalCriticality minus the unscaled baseline's.
	Delta float64
	// Top is the highest-criticality signal other than the system
	// outputs themselves (whose criticality is pinned at C_o by Eq. 4),
	// with Ranked's name tiebreak; TopCriticality is its value.
	Top            model.SignalID
	TopCriticality float64
}

// SweepResult is a full module × factor grid plus its baseline.
type SweepResult struct {
	// BaseTotal is Σ_s C_s of the unscaled matrix.
	BaseTotal float64
	// Cells holds one entry per (module, factor), modules outer,
	// factors inner, in the order given to Sweep.
	Cells []Cell
}

// Sweep profiles every (module, factor) containment hypothesis on a
// worker pool sharing one engine. Because rows are memoized by
// downstream-cone content, each cell pays only for the sources whose
// cone contains the scaled module; everything else is a cache hit. The
// result is deterministic and independent of the worker count.
func Sweep(e *Engine, p *core.Permeability, modules []model.ModuleID, factors []float64, workers int) (*SweepResult, error) {
	if e == nil {
		e = Shared()
	}
	sys := p.System()
	for _, m := range modules {
		if _, ok := sys.Module(m); !ok {
			return nil, fmt.Errorf("analytic: unknown module %q", m)
		}
	}
	for _, f := range factors {
		if f < 0 {
			return nil, fmt.Errorf("analytic: negative scale factor %v", f)
		}
	}
	if workers < 1 {
		workers = 1
	}

	base, err := e.Profile(p)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		BaseTotal: totalCriticality(base),
		Cells:     make([]Cell, len(modules)*len(factors)),
	}

	jobs := make(chan int)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := range jobs {
				mod := modules[j/len(factors)]
				factor := factors[j%len(factors)]
				scaled, err := p.ScaleModule(mod, factor)
				if err == nil {
					var pr *core.Profile
					pr, err = e.Profile(scaled)
					if err == nil {
						res.Cells[j] = makeCell(mod, factor, pr, res.BaseTotal)
					}
				}
				if err != nil && errs[w] == nil {
					errs[w] = fmt.Errorf("analytic: sweep %s × %v: %w", mod, factor, err)
				}
			}
		}(w)
	}
	for j := range res.Cells {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

func makeCell(mod model.ModuleID, factor float64, pr *core.Profile, baseTotal float64) Cell {
	c := Cell{
		Module:           mod,
		Factor:           factor,
		TotalCriticality: totalCriticality(pr),
	}
	c.Delta = c.TotalCriticality - baseTotal
	for _, sp := range pr.Ranked(core.ByCriticality) {
		if sp.Kind != model.KindSystemOutput {
			c.Top = sp.Signal
			c.TopCriticality = sp.Criticality
			break
		}
	}
	return c
}

func totalCriticality(pr *core.Profile) float64 {
	var sum float64
	for _, sp := range pr.Signals() {
		sum += sp.Criticality
	}
	return sum
}
