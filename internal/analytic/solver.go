package analytic

import (
	"math"

	"repro/internal/core"
	"repro/internal/model"
)

// Params bounds the two iterative solvers. The zero value is replaced
// by DefaultParams.
type Params struct {
	// Tol is the series-truncation tolerance of the acyclic solver: an
	// absolute bound on the impact error left by the dropped tail (the
	// bound is proven in docs/analytic.md).
	Tol float64
	// MaxTerms caps the number of series sweeps per source row. If the
	// tail bound has not dropped below Tol by then, the row is still
	// returned and the residual is reported via Diagnose.
	MaxTerms int
	// FixTol is the per-sweep delta tolerance of the cyclic fixpoint
	// solver.
	FixTol float64
	// MaxSweeps caps Gauss–Seidel sweeps per strongly connected
	// component.
	MaxSweeps int
}

// DefaultParams returns the tolerances used by Shared(). The series
// needs ~ln(S_1/(Tol·(1−m)))/ln(1/m) terms for max path weight m, so
// MaxTerms only binds when some path weight is extremely close to 1
// (m = 0.999 needs ~31k terms; m = 1 exactly short-circuits to 1).
func DefaultParams() Params {
	return Params{Tol: 1e-12, MaxTerms: 100_000, FixTol: 1e-12, MaxSweeps: 10_000}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.Tol <= 0 {
		p.Tol = d.Tol
	}
	if p.MaxTerms <= 0 {
		p.MaxTerms = d.MaxTerms
	}
	if p.FixTol <= 0 {
		p.FixTol = d.FixTol
	}
	if p.MaxSweeps <= 0 {
		p.MaxSweeps = d.MaxSweeps
	}
	return p
}

// topology is the permeability-independent compilation of a system:
// dense edge endpoints and the per-module edge grouping the content
// hashes are computed over. Built once per *model.System.
type topology struct {
	sys   *model.System
	n     int          // dense signal count
	edges []model.Edge // system edge order (module decl order, then ports)
	eFrom []int32      // dense endpoint indices per edge
	eTo   []int32
	// Per-module views, indexed by module ordinal (declaration order).
	modIDs   []model.ModuleID
	modEdges [][]int32 // edge ids of each module
	modIns   [][]int32 // unique dense input-signal indices of each module
	// System outputs in declaration order, with their criticalities.
	outIdx  []int32
	outCrit []float64
}

func compileTopology(sys *model.System) *topology {
	t := &topology{sys: sys, n: sys.NumSignals(), edges: sys.Edges()}
	t.eFrom = make([]int32, len(t.edges))
	t.eTo = make([]int32, len(t.edges))
	modOrdinal := make(map[model.ModuleID]int)
	for _, m := range sys.Modules() {
		modOrdinal[m.ID] = len(t.modIDs)
		t.modIDs = append(t.modIDs, m.ID)
		ins := make([]int32, 0, len(m.Inputs))
		seen := make(map[int32]bool, len(m.Inputs))
		for _, pb := range m.Inputs {
			i, _ := sys.SignalIndex(pb.Signal)
			if !seen[int32(i)] {
				seen[int32(i)] = true
				ins = append(ins, int32(i))
			}
		}
		t.modIns = append(t.modIns, ins)
		t.modEdges = append(t.modEdges, nil)
	}
	for i, e := range t.edges {
		fi, _ := sys.SignalIndex(e.From)
		ti, _ := sys.SignalIndex(e.To)
		t.eFrom[i] = int32(fi)
		t.eTo[i] = int32(ti)
		ord := modOrdinal[e.Module]
		t.modEdges[ord] = append(t.modEdges[ord], int32(i))
	}
	for _, o := range sys.SystemOutputs() {
		oi, _ := sys.SignalIndex(o)
		sig, _ := sys.Signal(o)
		t.outIdx = append(t.outIdx, int32(oi))
		t.outCrit = append(t.outCrit, sig.Criticality)
	}
	return t
}

// context is one permeability matrix compiled against a topology: the
// active (positive, non-self-loop) subgraph, its condensation order,
// reachability bitsets and the per-source cone keys that memoize rows.
type context struct {
	top  *topology
	perm []float64 // per system edge
	fp   uint64    // fingerprint over all module hashes

	modHash []uint64 // FNV-1a over each module's sub-matrix

	// Active subgraph, in condensation-topological sweep order.
	act     []int32 // active edge ids, ordered by the topo position of From
	actFrom []int32
	actTo   []int32
	actPerm []float64
	inAdj   [][]int32 // per signal: positions into act of its active in-edges

	comps   [][]int32 // SCCs of the active subgraph, topological order
	compOf  []int32
	acyclic bool

	words   int      // bitset row width
	reach   []uint64 // n rows of `words` words: signals reachable from s (incl. s)
	coneKey []uint64 // per source: hash of the modules in its cone

	// residual is the largest unconverged solver bound observed while
	// solving rows under this context (0 when everything converged).
	residual float64
}

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func compileContext(top *topology, p *core.Permeability) *context {
	c := &context{top: top, perm: make([]float64, len(top.edges))}
	for i, e := range top.edges {
		c.perm[i] = p.Get(e)
	}

	// Per-module content hashes over the full sub-matrix (zero and
	// self-loop entries included: any change to a module's entries must
	// change its hash).
	c.modHash = make([]uint64, len(top.modIDs))
	fp := uint64(fnvOffset)
	for m := range top.modIDs {
		h := fnvMix(fnvOffset, uint64(m)+1)
		for _, ei := range top.modEdges[m] {
			h = fnvMix(h, math.Float64bits(c.perm[ei]))
		}
		c.modHash[m] = h
		fp = fnvMix(fp, h)
	}
	c.fp = fp

	// Active subgraph: positive permeability, no self-loops. Dropping
	// the rest preserves Eq. 2 exactly (zero-weight paths contribute a
	// factor of 1; self-loops never lie on a simple path).
	n := top.n
	var active []int32
	outAdj := make([][]int32, n)
	for i := range top.edges {
		if c.perm[i] <= 0 || top.eFrom[i] == top.eTo[i] {
			continue
		}
		active = append(active, int32(i))
		outAdj[top.eFrom[i]] = append(outAdj[top.eFrom[i]], int32(i))
	}

	c.condense(outAdj)

	// Order active edges by the topo position of their source signal so
	// one linear pass over them is a topological sweep. The sort is a
	// stable counting sort over positions, keeping system edge order
	// within a position for determinism.
	pos := make([]int32, n)
	order := make([]int32, 0, n)
	for _, comp := range c.comps {
		for _, v := range comp {
			pos[v] = int32(len(order))
			order = append(order, v)
		}
	}
	c.act = make([]int32, 0, len(active))
	for _, v := range order {
		c.act = append(c.act, outAdj[v]...)
	}
	c.actFrom = make([]int32, len(c.act))
	c.actTo = make([]int32, len(c.act))
	c.actPerm = make([]float64, len(c.act))
	c.inAdj = make([][]int32, n)
	for i, ei := range c.act {
		c.actFrom[i] = top.eFrom[ei]
		c.actTo[i] = top.eTo[ei]
		c.actPerm[i] = c.perm[ei]
		c.inAdj[c.actTo[i]] = append(c.inAdj[c.actTo[i]], int32(i))
	}

	c.buildReach(outAdj)
	c.buildConeKeys()
	return c
}

// condense runs Tarjan's algorithm over the active subgraph and stores
// the strongly connected components in topological order. The context
// is acyclic iff every component is a singleton (self-loops are already
// dropped).
func (c *context) condense(outAdj [][]int32) {
	n := c.top.n
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int32
	var next int32
	var comps [][]int32 // reverse topological order as emitted

	var strongconnect func(v int32)
	strongconnect = func(v int32) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, ei := range outAdj[v] {
			w := c.top.eTo[ei]
			if index[w] == unvisited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int32
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for v := int32(0); v < int32(n); v++ {
		if index[v] == unvisited {
			strongconnect(v)
		}
	}

	// Reverse into topological order and record memberships.
	c.comps = make([][]int32, len(comps))
	for i := range comps {
		c.comps[i] = comps[len(comps)-1-i]
	}
	c.compOf = make([]int32, n)
	c.acyclic = true
	for ci, comp := range c.comps {
		if len(comp) > 1 {
			c.acyclic = false
		}
		for _, v := range comp {
			c.compOf[v] = int32(ci)
		}
	}
}

// buildReach fills the per-signal reachability bitsets (each signal
// reaches itself) by walking the condensation sinks-first.
func (c *context) buildReach(outAdj [][]int32) {
	n := c.top.n
	c.words = (n + 63) / 64
	c.reach = make([]uint64, n*c.words)
	compRow := make([]uint64, len(c.comps)*c.words)
	for ci := len(c.comps) - 1; ci >= 0; ci-- {
		row := compRow[ci*c.words : (ci+1)*c.words]
		for _, v := range c.comps[ci] {
			row[v>>6] |= 1 << (uint(v) & 63)
			for _, ei := range outAdj[v] {
				tc := c.compOf[c.top.eTo[ei]]
				if tc == int32(ci) {
					continue
				}
				succ := compRow[int(tc)*c.words : (int(tc)+1)*c.words]
				for w := range row {
					row[w] |= succ[w]
				}
			}
		}
		for _, v := range c.comps[ci] {
			copy(c.reach[int(v)*c.words:(int(v)+1)*c.words], row)
		}
	}
}

// buildConeKeys hashes, for every source signal, the content hashes of
// the modules whose inputs the source can reach — exactly the modules
// whose sub-matrix can influence the source's row. Rows are memoized
// under this key, so changing a module invalidates only the rows whose
// cone contains it.
func (c *context) buildConeKeys() {
	n := c.top.n
	c.coneKey = make([]uint64, n)
	for s := 0; s < n; s++ {
		row := c.reach[s*c.words : (s+1)*c.words]
		h := uint64(fnvOffset)
		for m := range c.top.modIDs {
			inCone := false
			for _, in := range c.top.modIns[m] {
				if row[in>>6]&(1<<(uint(in)&63)) != 0 {
					inCone = true
					break
				}
			}
			if inCone {
				h = fnvMix(h, uint64(m)+1)
				h = fnvMix(h, c.modHash[m])
			}
		}
		c.coneKey[s] = h
	}
}

func (c *context) reaches(src, dst int32) bool {
	return c.reach[int(src)*c.words+int(dst>>6)]&(1<<(uint(dst)&63)) != 0
}

// solveRow computes Eq. 2 impacts from one source to every signal. The
// returned residual is 0 when the solver converged within Params and
// otherwise bounds the remaining error.
func (c *context) solveRow(src int32, par Params) ([]float64, float64) {
	if c.acyclic {
		return c.solveRowSeries(src, par)
	}
	return c.solveRowFixpoint(src, par)
}

// solveRowSeries evaluates Eq. 2 exactly on an acyclic active graph.
//
// For a destination t, Eq. 2 is I = 1 − Π_p (1 − w_p) over the simple
// paths p from src to t. Taking logs, log Π (1 − w_p) = −Σ_{k≥1} S_k/k
// with S_k = Σ_p w_p^k, and each S_k is computable without enumerating
// paths: it is the path sum of the graph whose edge weights are
// perm^k, one linear sweep over topologically ordered edges. The tail
// dropped after term k is bounded by S_k·m/((k+1)(1−m)) where
// m = max_p w_p (itself a max-product sweep); the loop stops when that
// bound falls below Params.Tol. m == 1 means some path passes errors
// with certainty and Eq. 2 saturates at exactly 1.
func (c *context) solveRowSeries(src int32, par Params) ([]float64, float64) {
	n := c.top.n
	impact := make([]float64, n)
	impact[src] = 1 // a signal's impact on itself is 1

	// Max-product path weight per destination.
	maxw := make([]float64, n)
	maxw[src] = 1
	for i, f := range c.actFrom {
		if maxw[f] > 0 {
			if cand := maxw[f] * c.actPerm[i]; cand > maxw[c.actTo[i]] {
				maxw[c.actTo[i]] = cand
			}
		}
	}
	maxw[src] = 0 // src's own row entry is fixed; never a series target

	logsum := make([]float64, n)
	s := make([]float64, n)
	pow := append([]float64(nil), c.actPerm...)
	residual := 0.0
	for k := 1; ; k++ {
		for i := range s {
			s[i] = 0
		}
		s[src] = 1
		for i, f := range c.actFrom {
			if s[f] != 0 {
				s[c.actTo[i]] += s[f] * pow[i]
			}
		}
		s[src] = 0
		tail := 0.0
		for t := 0; t < n; t++ {
			if m := maxw[t]; m > 0 && m < 1 && s[t] != 0 {
				logsum[t] += s[t] / float64(k)
				if tb := s[t] * m / (float64(k+1) * (1 - m)); tb > tail {
					tail = tb
				}
			}
		}
		if tail <= par.Tol {
			break
		}
		if k >= par.MaxTerms {
			residual = tail
			break
		}
		for i := range pow {
			pow[i] *= c.actPerm[i]
		}
	}

	for t := 0; t < n; t++ {
		if int32(t) == src {
			continue
		}
		switch m := maxw[t]; {
		case m >= 1:
			impact[t] = 1 // a certain path: Eq. 2's product has a zero factor
		case m == 0:
			impact[t] = 0 // unreachable over positive-permeability edges
		default:
			v := -math.Expm1(-logsum[t])
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			impact[t] = v
		}
	}
	return impact, residual
}

// solveRowFixpoint handles active graphs with genuine cycles: it solves
// the monotone node equations P(t) = 1 − Π_{e into t} (1 − P(from_e)·perm_e)
// componentwise in condensation order, iterating each non-trivial SCC
// with Gauss–Seidel sweeps until the largest per-sweep delta falls
// below Params.FixTol. Starting from zero, the updates are monotone
// non-decreasing and bounded by 1, so they converge to the least
// fixpoint; geometric convergence at the loop gain is shown in
// docs/analytic.md. On reconvergent or cyclic structure this
// node-marginal model can overestimate Eq. 2's path view (positively
// associated path events, Harris/FKG) — the documented validation
// tolerance against Monte Carlo covers the gap.
func (c *context) solveRowFixpoint(src int32, par Params) ([]float64, float64) {
	n := c.top.n
	p := make([]float64, n)
	p[src] = 1
	residual := 0.0
	update := func(v int32) float64 {
		prod := 1.0
		for _, ai := range c.inAdj[v] {
			prod *= 1 - p[c.actFrom[ai]]*c.actPerm[ai]
		}
		return 1 - prod
	}
	for _, comp := range c.comps {
		if len(comp) == 1 {
			if v := comp[0]; v != src {
				p[v] = update(v)
			}
			continue
		}
		for sweep := 0; ; sweep++ {
			delta := 0.0
			for _, v := range comp {
				if v == src {
					continue
				}
				nv := update(v)
				if d := nv - p[v]; d > delta {
					delta = d
				}
				p[v] = nv
			}
			if delta <= par.FixTol {
				break
			}
			if sweep >= par.MaxSweeps {
				if delta > residual {
					residual = delta
				}
				break
			}
		}
	}
	// Mask signals the source cannot reach (their equations are exactly
	// zero anyway; this also clamps stray rounding).
	for t := int32(0); t < int32(n); t++ {
		if t != src && !c.reaches(src, t) {
			p[t] = 0
		}
	}
	return p, residual
}
