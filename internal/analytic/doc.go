// Package analytic computes the paper's propagation measures — impact
// (Eq. 2), exposure (Eq. 1) and criticality (Eqs. 3–4) — by propagating
// probabilities over the wiring graph instead of enumerating propagation
// paths or sampling campaigns.
//
// The tree-based reference in internal/core materialises every acyclic
// path from a source to a destination; the number of such paths grows
// exponentially with reconvergent fan-out, so a single impact query can
// be exponential in graph depth. This package solves all destinations
// for one source in a fixed number of O(E) sweeps:
//
//   - On acyclic permeability graphs it evaluates Eq. 2 exactly via a
//     power-series transform: log Π_paths (1 − w_p) = −Σ_{k≥1} S_k/k
//     where S_k = Σ_paths w_p^k is a path sum computable by one
//     topological sweep with edge weights perm^k. The truncation error
//     is provably below a stated tolerance (see docs/analytic.md).
//   - On graphs whose positive-permeability edges form cycles it runs a
//     monotone Kleene/Gauss–Seidel fixpoint over strongly connected
//     components, converging to the least fixpoint of the node-failure
//     equations within a bounded sweep count.
//
// Edges with zero permeability and self-loops are dropped before
// solving: zero-weight paths contribute a factor of 1 to Eq. 2's
// product, and self-loops never lie on a simple path. This is what
// makes the arrestment target — structurally cyclic through CALC's
// i→i self-loop and the i↔mscnt clock loop, but with zero measured
// permeability on those edges — an exact, acyclic solve.
//
// Engine adds FastFlip-style compositional memoization on top: each
// module's permeability sub-matrix is content-hashed, per-source
// results are keyed by the hash of the modules in the source's
// downstream cone, and a what-if change (core.ScaleModule, a
// re-profiled module) therefore invalidates only the rows whose cone
// contains the changed module — incremental re-analysis instead of a
// cold solve.
package analytic
