package analytic

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/model"
)

// Cache bounds: contexts are cheap to rebuild (one O(E+n²/64) compile),
// rows are the solver work worth keeping. Both maps are cleared
// wholesale when full — sweeps revisit keys immediately, so an LRU
// would buy nothing over this.
const (
	maxContexts = 256
	maxRows     = 1 << 16
)

// Engine memoizes solver results across permeability matrices of the
// same systems. It is safe for concurrent use; the what-if sweep runs
// one engine from many goroutines.
//
// Memoization is compositional: a row (one source, all destinations)
// is keyed by the content hashes of the modules in the source's
// downstream cone, so two matrices that differ only in modules outside
// that cone share the row. core.ScaleModule therefore invalidates only
// the rows that can see the scaled module.
type Engine struct {
	params Params

	mu      sync.Mutex
	systems map[*model.System]*sysCache
	hits    uint64
	misses  uint64
}

type sysCache struct {
	top  *topology
	ctxs map[uint64]*context
	rows map[rowKey][]float64
}

type rowKey struct {
	src  int32
	cone uint64
}

// New returns an engine with DefaultParams.
func New() *Engine { return NewWithParams(Params{}) }

// NewWithParams returns an engine with explicit solver bounds.
func NewWithParams(p Params) *Engine {
	return &Engine{params: p.withDefaults(), systems: make(map[*model.System]*sysCache)}
}

var shared = New()

// Shared returns the process-wide engine, the solver cache hot paths
// (report rendering, cmd/place) route through.
func Shared() *Engine { return shared }

// Stats reports row-cache hits and misses since the engine was created.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Stats returns the row-cache counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{Hits: e.hits, Misses: e.misses}
}

// contextFor compiles (or recalls) the matrix's solve context. The
// fingerprint pass reads every permeability, so a mutated-in-place
// matrix is re-compiled automatically.
func (e *Engine) contextFor(p *core.Permeability) (*sysCache, *context, error) {
	sys := p.System()
	if sys == nil {
		return nil, nil, fmt.Errorf("analytic: permeability matrix has no system")
	}
	e.mu.Lock()
	sc, ok := e.systems[sys]
	e.mu.Unlock()
	if !ok {
		top := compileTopology(sys)
		e.mu.Lock()
		if prev, raced := e.systems[sys]; raced {
			sc = prev
		} else {
			sc = &sysCache{top: top, ctxs: make(map[uint64]*context), rows: make(map[rowKey][]float64)}
			e.systems[sys] = sc
		}
		e.mu.Unlock()
	}

	ctx := compileContext(sc.top, p)
	e.mu.Lock()
	if prev, ok := sc.ctxs[ctx.fp]; ok {
		ctx = prev
	} else {
		if len(sc.ctxs) >= maxContexts {
			sc.ctxs = make(map[uint64]*context)
		}
		sc.ctxs[ctx.fp] = ctx
	}
	e.mu.Unlock()
	return sc, ctx, nil
}

// rowFor returns the memoized impact row for one source, solving it on
// a miss. The returned slice is owned by the cache — callers must not
// mutate it.
func (e *Engine) rowFor(sc *sysCache, ctx *context, src int32) []float64 {
	k := rowKey{src: src, cone: ctx.coneKey[src]}
	e.mu.Lock()
	if row, ok := sc.rows[k]; ok {
		e.hits++
		e.mu.Unlock()
		return row
	}
	e.misses++
	e.mu.Unlock()

	row, residual := ctx.solveRow(src, e.params)

	e.mu.Lock()
	if residual > ctx.residual {
		ctx.residual = residual
	}
	if prev, ok := sc.rows[k]; ok {
		row = prev // a racing solve won; results are deterministic anyway
	} else {
		if len(sc.rows) >= maxRows {
			sc.rows = make(map[rowKey][]float64)
		}
		sc.rows[k] = row
	}
	e.mu.Unlock()
	return row
}

// Impacts returns I(from → t) for every signal t of the system, indexed
// by the system's dense signal order (model.System.SignalIndex).
func (e *Engine) Impacts(p *core.Permeability, from model.SignalID) ([]float64, error) {
	sc, ctx, err := e.contextFor(p)
	if err != nil {
		return nil, err
	}
	src, ok := p.System().SignalIndex(from)
	if !ok {
		return nil, fmt.Errorf("analytic: unknown signal %q", from)
	}
	row := e.rowFor(sc, ctx, int32(src))
	return append([]float64(nil), row...), nil
}

// Impact returns I(from → to), Eq. 2 — the drop-in analytic equivalent
// of core.Impact.
func (e *Engine) Impact(p *core.Permeability, from, to model.SignalID) (float64, error) {
	sc, ctx, err := e.contextFor(p)
	if err != nil {
		return 0, err
	}
	sys := p.System()
	src, ok := sys.SignalIndex(from)
	if !ok {
		return 0, fmt.Errorf("analytic: unknown signal %q", from)
	}
	dst, ok := sys.SignalIndex(to)
	if !ok {
		return 0, fmt.Errorf("analytic: unknown signal %q", to)
	}
	row := e.rowFor(sc, ctx, int32(src))
	return row[dst], nil
}

// Diag describes how the engine solved a matrix.
type Diag struct {
	// Acyclic reports whether the positive-permeability subgraph is
	// acyclic — i.e. whether the exact series solver applies.
	Acyclic bool
	// ActiveEdges counts positive, non-self-loop edges.
	ActiveEdges int
	// Residual is the largest unconverged solver bound observed across
	// the rows solved under this matrix (0 when all rows converged
	// within Params).
	Residual float64
	// Fingerprint identifies the compiled matrix content.
	Fingerprint uint64
}

// Diagnose compiles (or recalls) the matrix's context and reports it.
func (e *Engine) Diagnose(p *core.Permeability) (Diag, error) {
	_, ctx, err := e.contextFor(p)
	if err != nil {
		return Diag{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return Diag{
		Acyclic:     ctx.acyclic,
		ActiveEdges: len(ctx.act),
		Residual:    ctx.residual,
		Fingerprint: ctx.fp,
	}, nil
}
