// Package traceview analyzes the NDJSON event stream a campaign writes
// via -events-out: it rebuilds the span trees (including worker-side
// spans folded in from shard responses), walks each campaign trace's
// critical path, renders a folded-stack flamegraph file (the input
// format of Brendan Gregg's flamegraph.pl and every tool that learned
// it), and attributes stragglers — which phase (queue, exec, network)
// made the slowest shards slow.
package traceview

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Record is one NDJSON event-log line, mirroring obs.Event. Point
// events carry no span id; span records carry id, optional parent,
// duration, and — for campaign spans — the trace id.
type Record struct {
	TSMillis int64             `json:"ts_ms"`
	Kind     string            `json:"kind"`
	Name     string            `json:"name"`
	Span     uint64            `json:"span,omitempty"`
	Parent   uint64            `json:"parent,omitempty"`
	DurMs    int64             `json:"dur_ms,omitempty"`
	Trace    string            `json:"trace,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Span is one reconstructed span node.
type Span struct {
	Record
	Children []*Span
}

// End reports the span's end offset.
func (s *Span) End() int64 { return s.TSMillis + s.DurMs }

// SelfMs is the span's duration minus its children's (clamped at 0) —
// the time it spent in its own frame, which is what a flamegraph's box
// widths mean.
func (s *Span) SelfMs() int64 {
	self := s.DurMs
	for _, c := range s.Children {
		self -= c.DurMs
	}
	if self < 0 {
		self = 0
	}
	return self
}

// Analysis is a parsed event log: the span forest, point events, and
// per-trace groupings.
type Analysis struct {
	// Roots are the parentless spans (campaign roots, plus any orphans
	// whose parent never closed), in first-seen order.
	Roots []*Span
	// Spans indexes every span by id.
	Spans map[uint64]*Span
	// Events are the point records, in file order.
	Events []Record
	// Lines is how many NDJSON lines parsed; Skipped how many did not
	// (truncated final line of a killed run, foreign content).
	Lines, Skipped int
}

// Parse reads an NDJSON event log. Unparseable lines are counted and
// skipped, never fatal: a campaign killed mid-write leaves at most one
// cut line, and the rest of the log must still analyze.
func Parse(r io.Reader) (*Analysis, error) {
	a := &Analysis{Spans: make(map[uint64]*Span)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var order []*Span
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		a.Lines++
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			a.Skipped++
			continue
		}
		switch rec.Kind {
		case "span":
			s := &Span{Record: rec}
			a.Spans[rec.Span] = s
			order = append(order, s)
		case "event":
			a.Events = append(a.Events, rec)
		default:
			a.Skipped++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading event log: %w", err)
	}
	// Link children to parents; spans whose parent is missing (it never
	// ended, e.g. the root of a killed run) become roots themselves.
	for _, s := range order {
		if p, ok := a.Spans[s.Parent]; ok && s.Parent != 0 && p != s {
			p.Children = append(p.Children, s)
		} else {
			a.Roots = append(a.Roots, s)
		}
	}
	// Span records are written at End, so a parent appears after its
	// children; sort each level back into start order for stable output.
	for _, s := range a.Spans {
		sort.SliceStable(s.Children, func(i, j int) bool {
			return s.Children[i].TSMillis < s.Children[j].TSMillis
		})
	}
	sort.SliceStable(a.Roots, func(i, j int) bool { return a.Roots[i].TSMillis < a.Roots[j].TSMillis })
	return a, nil
}

// PathStep is one span on a critical path, with its nesting depth
// under the path's root.
type PathStep struct {
	Span  *Span
	Depth int
}

// CriticalPath computes the chain of spans that bounded root's wall
// clock, walking backwards from root's end: the latest-ending child
// covers the tail, the walk continues from that child's start, and the
// procedure recurses into every covering segment. Shortening any span
// off this path cannot finish the trace sooner. Steps come out in time
// order.
func CriticalPath(root *Span) []PathStep {
	steps := []PathStep{{root, 0}}
	appendCritical(root, 1, &steps)
	return steps
}

func appendCritical(s *Span, depth int, steps *[]PathStep) {
	// Collect covering segments right to left. A sequential phase chain
	// (plan → execute → reduce) yields every phase; parallel children
	// (shards under execute) yield only the one that ended last, since
	// its siblings all overlap it.
	var segs []*Span
	picked := make(map[*Span]bool)
	cur := s.End() + 1
	for {
		var pick *Span
		for _, c := range s.Children {
			if picked[c] || c.TSMillis >= cur || c.End() >= cur {
				continue
			}
			if pick == nil || c.End() > pick.End() {
				pick = c
			}
		}
		if pick == nil {
			break
		}
		picked[pick] = true
		segs = append(segs, pick)
		cur = pick.TSMillis + 1
	}
	for i := len(segs) - 1; i >= 0; i-- {
		*steps = append(*steps, PathStep{segs[i], depth})
		appendCritical(segs[i], depth+1, steps)
	}
}

// spanLabel renders a span for stacks and reports: the name plus the
// attributes that identify the work (campaign, shard, worker).
func spanLabel(s *Span) string {
	label := s.Name
	for _, k := range []string{"campaign", "shard", "worker", "worker_id"} {
		if v := s.Attrs[k]; v != "" {
			label += ":" + v
		}
	}
	// Folded-stack syntax reserves ';' as the frame separator.
	return strings.ReplaceAll(label, ";", ",")
}

// WriteFolded renders the span forest as folded stacks — one line per
// span, "root;child;leaf self_ms" — the input format flamegraph
// renderers consume. Spans with zero self time are omitted (they are
// pure containers; their children carry the weight).
func WriteFolded(w io.Writer, a *Analysis) error {
	var walk func(s *Span, prefix string) error
	walk = func(s *Span, prefix string) error {
		stack := spanLabel(s)
		if prefix != "" {
			stack = prefix + ";" + stack
		}
		if self := s.SelfMs(); self > 0 {
			if _, err := fmt.Fprintf(w, "%s %d\n", stack, self); err != nil {
				return err
			}
		}
		for _, c := range s.Children {
			if err := walk(c, stack); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range a.Roots {
		if err := walk(root, ""); err != nil {
			return err
		}
	}
	return nil
}

// ShardPhases is one dispatch.shard span's phase attribution.
type ShardPhases struct {
	Shard   string
	Worker  string
	WallMs  int64
	QueueMs int64
	ExecMs  int64
	NetMs   int64
}

// Stragglers collects every dispatch.shard span that carries phase
// attributes, slowest first.
func Stragglers(a *Analysis) []ShardPhases {
	var out []ShardPhases
	for _, s := range a.Spans {
		if s.Name != "dispatch.shard" {
			continue
		}
		p := ShardPhases{
			Shard:   s.Attrs["shard"],
			Worker:  s.Attrs["worker_id"],
			WallMs:  s.DurMs,
			QueueMs: atoi64(s.Attrs["queue_ms"]),
			ExecMs:  atoi64(s.Attrs["exec_ms"]),
			NetMs:   atoi64(s.Attrs["net_ms"]),
		}
		if p.Worker == "" {
			p.Worker = s.Attrs["worker"]
		}
		out = append(out, p)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].WallMs != out[j].WallMs {
			return out[i].WallMs > out[j].WallMs
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

func atoi64(s string) int64 {
	v, _ := strconv.ParseInt(s, 10, 64)
	return v
}

// WriteReport renders the human-readable analysis: per-trace span
// counts, the critical path of every root span, and the top straggler
// shards with phase attribution.
func WriteReport(w io.Writer, a *Analysis, top int) error {
	fmt.Fprintf(w, "trace analysis: %d lines, %d spans, %d events", a.Lines, len(a.Spans), len(a.Events))
	if a.Skipped > 0 {
		fmt.Fprintf(w, ", %d skipped", a.Skipped)
	}
	fmt.Fprintln(w)

	byTrace := make(map[string]int)
	for _, s := range a.Spans {
		if s.Trace != "" {
			byTrace[s.Trace]++
		}
	}
	traces := make([]string, 0, len(byTrace))
	for t := range byTrace {
		traces = append(traces, t)
	}
	sort.Strings(traces)
	for _, t := range traces {
		fmt.Fprintf(w, "trace %s: %d spans\n", t, byTrace[t])
	}

	for _, root := range a.Roots {
		if root.Name != "campaign" {
			continue
		}
		fmt.Fprintf(w, "\ncritical path of %s (%d ms):\n", spanLabel(root), root.DurMs)
		for _, step := range CriticalPath(root) {
			fmt.Fprintf(w, "  %s%s %d ms (self %d ms)\n",
				strings.Repeat("  ", step.Depth), spanLabel(step.Span), step.Span.DurMs, step.Span.SelfMs())
		}
	}

	if sh := Stragglers(a); len(sh) > 0 {
		if top <= 0 || top > len(sh) {
			top = len(sh)
		}
		fmt.Fprintf(w, "\nslowest shards (of %d dispatched):\n", len(sh))
		for _, p := range sh[:top] {
			fmt.Fprintf(w, "  shard %s on %s: %d ms wall — queue %d ms, exec %d ms, net %d ms\n",
				p.Shard, p.Worker, p.WallMs, p.QueueMs, p.ExecMs, p.NetMs)
		}
	}
	return nil
}
