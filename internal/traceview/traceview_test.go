package traceview

import (
	"strings"
	"testing"
)

// fixture is a miniature merged event log: one campaign root, one
// dispatch.shard with a folded worker subtree, a second faster shard,
// and a point event — plus one truncated line, as a killed run leaves.
const fixture = `{"ts_ms":0,"kind":"span","name":"worker.exec","span":5,"parent":4,"dur_ms":40,"trace":"00ff","attrs":{"runs":"8"}}
{"ts_ms":0,"kind":"span","name":"worker.shard","span":4,"parent":3,"dur_ms":60,"trace":"00ff","attrs":{"shard":"a1"}}
{"ts_ms":0,"kind":"span","name":"dispatch.shard","span":3,"parent":1,"dur_ms":80,"trace":"00ff","attrs":{"shard":"a1","worker_id":"pid:7","queue_ms":"5","exec_ms":"60","net_ms":"15"}}
{"ts_ms":2,"kind":"span","name":"dispatch.shard","span":6,"parent":1,"dur_ms":30,"trace":"00ff","attrs":{"shard":"b2","worker_id":"pid:8","queue_ms":"1","exec_ms":"25","net_ms":"4"}}
{"ts_ms":1,"kind":"event","name":"dispatch.retry","attrs":{"shard":"b2"}}
{"ts_ms":0,"kind":"span","name":"campaign","span":1,"dur_ms":100,"trace":"00ff","attrs":{"campaign":"permeability"}}
{"ts_ms":3,"kind":"span","name":"camp`

func parseFixture(t *testing.T) *Analysis {
	t.Helper()
	a, err := Parse(strings.NewReader(fixture))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestParseBuildsForest(t *testing.T) {
	a := parseFixture(t)
	if a.Lines != 7 || a.Skipped != 1 {
		t.Errorf("lines=%d skipped=%d, want 7 lines with 1 skipped (truncated tail)", a.Lines, a.Skipped)
	}
	if len(a.Spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(a.Spans))
	}
	if len(a.Events) != 1 || a.Events[0].Name != "dispatch.retry" {
		t.Errorf("events = %+v", a.Events)
	}
	if len(a.Roots) != 1 || a.Roots[0].Name != "campaign" {
		t.Fatalf("roots = %d, want the single campaign root", len(a.Roots))
	}
	root := a.Roots[0]
	if len(root.Children) != 2 {
		t.Fatalf("campaign children = %d, want 2 dispatch.shard", len(root.Children))
	}
	// Children sorted by start time: a1 (ts 0) before b2 (ts 2).
	if root.Children[0].Attrs["shard"] != "a1" || root.Children[1].Attrs["shard"] != "b2" {
		t.Errorf("children out of start order: %v, %v",
			root.Children[0].Attrs, root.Children[1].Attrs)
	}
	shard := root.Children[0]
	if len(shard.Children) != 1 || shard.Children[0].Name != "worker.shard" {
		t.Fatalf("dispatch.shard a1 children = %+v, want folded worker.shard", shard.Children)
	}
	if len(shard.Children[0].Children) != 1 || shard.Children[0].Children[0].Name != "worker.exec" {
		t.Errorf("worker.shard children = %+v, want worker.exec", shard.Children[0].Children)
	}
}

func TestCriticalPathFollowsLatestEnd(t *testing.T) {
	a := parseFixture(t)
	path := CriticalPath(a.Roots[0])
	var names []string
	for _, step := range path {
		names = append(names, step.Span.Name)
	}
	// Shard a1 ends at 80, b2 at 32 and overlaps a1 — the critical path
	// descends through a1's worker subtree only.
	want := "campaign dispatch.shard worker.shard worker.exec"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("critical path = %q, want %q", got, want)
	}
	if path[1].Span.Attrs["shard"] != "a1" {
		t.Errorf("critical shard = %v, want a1", path[1].Span.Attrs)
	}
	for i, wantDepth := range []int{0, 1, 2, 3} {
		if path[i].Depth != wantDepth {
			t.Errorf("step %d depth = %d, want %d", i, path[i].Depth, wantDepth)
		}
	}
}

func TestCriticalPathCoversSequentialPhases(t *testing.T) {
	// plan (0-10) → execute (10-90) → reduce (90-100): a backward walk
	// must surface all three phases, not just the last-ending one.
	const phases = `{"ts_ms":0,"kind":"span","name":"plan","span":2,"parent":1,"dur_ms":10}
{"ts_ms":10,"kind":"span","name":"execute","span":3,"parent":1,"dur_ms":80}
{"ts_ms":90,"kind":"span","name":"reduce","span":4,"parent":1,"dur_ms":10}
{"ts_ms":0,"kind":"span","name":"campaign","span":1,"dur_ms":100}`
	a, err := Parse(strings.NewReader(phases))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, step := range CriticalPath(a.Roots[0]) {
		names = append(names, step.Span.Name)
	}
	if got := strings.Join(names, " "); got != "campaign plan execute reduce" {
		t.Errorf("critical path = %q, want all three phases in time order", got)
	}
}

func TestSelfTime(t *testing.T) {
	a := parseFixture(t)
	root := a.Roots[0]
	// campaign 100 − (80 + 30) children = 0 clamped from −10.
	if got := root.SelfMs(); got != 0 {
		t.Errorf("campaign self = %d, want 0 (clamped)", got)
	}
	// dispatch.shard a1: 80 − 60 worker.shard = 20.
	if got := root.Children[0].SelfMs(); got != 20 {
		t.Errorf("dispatch self = %d, want 20", got)
	}
}

func TestWriteFolded(t *testing.T) {
	a := parseFixture(t)
	var sb strings.Builder
	if err := WriteFolded(&sb, a); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wantLines := []string{
		"campaign:permeability;dispatch.shard:a1:pid:7;worker.shard:a1;worker.exec 40",
		"campaign:permeability;dispatch.shard:a1:pid:7;worker.shard:a1 20",
		"campaign:permeability;dispatch.shard:a1:pid:7 20",
		"campaign:permeability;dispatch.shard:b2:pid:8 30",
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("folded output missing %q:\n%s", want, out)
		}
	}
	// Zero-self-time containers (the campaign root) are omitted.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "campaign:permeability ") {
			t.Errorf("zero-self root emitted: %q", line)
		}
	}
}

func TestStragglersSortedByWall(t *testing.T) {
	a := parseFixture(t)
	sh := Stragglers(a)
	if len(sh) != 2 {
		t.Fatalf("got %d shards, want 2", len(sh))
	}
	if sh[0].Shard != "a1" || sh[0].WallMs != 80 {
		t.Errorf("slowest = %+v, want a1 at 80 ms", sh[0])
	}
	if sh[0].QueueMs != 5 || sh[0].ExecMs != 60 || sh[0].NetMs != 15 {
		t.Errorf("phase split = %+v, want 5/60/15", sh[0])
	}
	if sh[0].Worker != "pid:7" {
		t.Errorf("worker = %q, want pid:7", sh[0].Worker)
	}
}

func TestWriteReport(t *testing.T) {
	a := parseFixture(t)
	var sb strings.Builder
	if err := WriteReport(&sb, a, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"5 spans", "1 skipped",
		"trace 00ff: 5 spans",
		"critical path of campaign:permeability (100 ms):",
		"worker.exec 40 ms",
		"slowest shards (of 2 dispatched):",
		"shard a1 on pid:7: 80 ms wall — queue 5 ms, exec 60 ms, net 15 ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// top=1 must suppress the second shard.
	if strings.Contains(out, "shard b2") {
		t.Errorf("report shows shard b2 despite top=1:\n%s", out)
	}
}

func TestParseOrphanBecomesRoot(t *testing.T) {
	// A killed run: the child span record was written, the parent never
	// ended. The orphan must surface as a root, not vanish.
	const cut = `{"ts_ms":5,"kind":"span","name":"dispatch.shard","span":9,"parent":1,"dur_ms":7}`
	a, err := Parse(strings.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Roots) != 1 || a.Roots[0].Name != "dispatch.shard" {
		t.Errorf("roots = %+v, want the orphaned span", a.Roots)
	}
}
