// Command propan runs the error propagation analysis of the target
// system: it prints the permeability matrix (Table 1), module measures,
// signal exposures, and — on request — trace, backtrack or impact trees.
//
// The matrix comes either from the paper's published values (-source
// paper) or from a fault-injection campaign on the reimplemented target
// (-source measure).
//
// Usage:
//
//	propan [-source paper|measure] [-per-input 500] [-tree sig] [-backtrack sig] [-impact sig]
//
// Measured campaigns run adaptively by default: sampling streams stop
// once their Wilson intervals are tight (docs/adaptive.md). -exact
// restores the fixed-size grid the paper used.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/paper"
	"repro/internal/report"
	"repro/internal/target"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "propan:", err)
		os.Exit(1)
	}
}

func run() error {
	source := flag.String("source", "paper", "permeability source: paper or measure")
	perInput := flag.Int("per-input", 500,
		"injections per module input (measure mode; the paper used 2000)")
	seed := flag.Int64("seed", 1, "campaign seed (measure mode)")
	workers := flag.Int("workers", 8, "campaign parallelism (measure mode)")
	exact := flag.Bool("exact", false,
		"run the full fixed-size grid instead of the adaptive early-stopping campaign")
	saveSamples := flag.String("save-samples", "",
		"write per-edge injection counts to this JSON file (measure mode)")
	benchOut := flag.String("bench-out", "",
		"campaign timing report path (measure mode; empty disables)")
	traceSig := flag.String("tree", "", "render the trace tree of this signal")
	backSig := flag.String("backtrack", "", "render the backtrack tree of this signal")
	impactSig := flag.String("impact", "", "render the impact tree of this signal")
	dotOut := flag.String("dot", "", "write Graphviz profiles (exposure + impact) with this file prefix")
	saveMatrix := flag.String("save-matrix", "", "write the permeability matrix to this JSON file")
	loadMatrix := flag.String("load-matrix", "", "read the permeability matrix from this JSON file instead of -source")
	flag.Parse()

	// Validate before any campaign or file work so misuse fails fast.
	if *perInput < 1 {
		return fmt.Errorf("-per-input must be >= 1 (got %d)", *perInput)
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be >= 1 (got %d)", *workers)
	}
	switch *source {
	case "paper", "measure":
	default:
		return fmt.Errorf("unknown -source %q (want paper or measure)", *source)
	}
	if *saveSamples != "" && *source != "measure" {
		return fmt.Errorf("-save-samples requires -source measure")
	}

	var p *core.Permeability
	if *loadMatrix != "" {
		data, err := os.ReadFile(*loadMatrix)
		if err != nil {
			return err
		}
		p, err = core.UnmarshalPermeability(target.NewSystem(), data)
		if err != nil {
			return err
		}
		*source = "file"
	}
	switch *source {
	case "file":
		// Loaded above.
	case "paper":
		p = paper.Table1()
	case "measure":
		opts := experiment.DefaultOptions(*seed)
		opts.Workers = *workers
		opts.Adaptive = !*exact
		if *benchOut != "" {
			opts.Timings = campaign.NewCollector()
		}
		mode := "adaptive"
		if *exact {
			mode = "exact"
		}
		fmt.Fprintf(os.Stderr, "measuring permeabilities (%s): %d injections per input over %d cases...\n",
			mode, *perInput, len(opts.Cases))
		res, err := experiment.EstimatePermeability(context.Background(), opts, *perInput)
		if err != nil {
			return err
		}
		if opts.Adaptive {
			fmt.Fprintf(os.Stderr, "  %d of %d planned runs executed (%d saved)\n",
				res.TotalRuns, res.PlannedRuns, res.PlannedRuns-res.TotalRuns)
		}
		if *saveSamples != "" {
			if err := res.WriteSamples(*saveSamples); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "samples written to %s\n", *saveSamples)
		}
		if err := experiment.WriteCampaignTimings(*benchOut, *seed, *workers, opts.Timings); err != nil {
			return err
		}
		if *benchOut != "" {
			fmt.Fprintf(os.Stderr, "campaign timing written to %s\n", *benchOut)
		}
		p = res.Matrix
	}

	if *saveMatrix != "" {
		data, err := p.MarshalJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*saveMatrix, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "matrix written to %s\n", *saveMatrix)
	}

	fmt.Println(report.Table1(p))

	sys := p.System()
	fmt.Println("Module measures:")
	fmt.Printf("%-8s %22s %24s %16s\n", "Module", "relative permeability", "non-weighted permeability", "exposure")
	for _, id := range sys.ModuleIDs() {
		rel, err := p.RelativePermeability(id)
		if err != nil {
			return err
		}
		nw, err := p.NonWeightedPermeability(id)
		if err != nil {
			return err
		}
		x, err := p.ModuleExposure(id)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %22.3f %24.3f %16.3f\n", id, rel, nw, x)
	}
	fmt.Println()

	pr, err := core.BuildProfile(p)
	if err != nil {
		return err
	}
	fmt.Println(report.ProfileFigure(pr, core.ByExposure, "Signal error exposure profile (Figure 5)"))
	fmt.Println(report.ProfileFigure(pr, core.ByImpact, "Signal impact profile (Figure 6)"))

	if *dotOut != "" {
		for metric, name := range map[core.Metric]string{
			core.ByExposure: "exposure",
			core.ByImpact:   "impact",
		} {
			path := *dotOut + "-" + name + ".dot"
			if err := os.WriteFile(path, []byte(report.DotProfile(pr, metric, name)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	if *traceSig != "" {
		tree, err := core.BuildTraceTree(sys, model.SignalID(*traceSig))
		if err != nil {
			return err
		}
		fmt.Println(tree.Render())
	}
	if *backSig != "" {
		tree, err := core.BuildBacktrackTree(sys, model.SignalID(*backSig))
		if err != nil {
			return err
		}
		fmt.Println(tree.Render())
	}
	if *impactSig != "" {
		fig, err := report.Figure4(p, model.SignalID(*impactSig), target.SigTOC2)
		if err != nil {
			return err
		}
		fmt.Println(fig)
	}
	return nil
}
