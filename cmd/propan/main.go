// Command propan runs the error propagation analysis of the target
// system: it prints the permeability matrix (Table 1), module measures,
// signal exposures, and — on request — trace, backtrack or impact trees.
//
// The matrix comes either from the paper's published values (-source
// paper) or from a fault-injection campaign on the reimplemented target
// (-source measure).
//
// Usage:
//
//	propan [-source paper|measure] [-per-input 2000] [-tree sig] [-backtrack sig] [-impact sig]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/paper"
	"repro/internal/report"
	"repro/internal/target"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "propan:", err)
		os.Exit(1)
	}
}

func run() error {
	source := flag.String("source", "paper", "permeability source: paper or measure")
	perInput := flag.Int("per-input", 500, "injections per module input (measure mode)")
	seed := flag.Int64("seed", 1, "campaign seed (measure mode)")
	workers := flag.Int("workers", 8, "campaign parallelism (measure mode)")
	traceSig := flag.String("tree", "", "render the trace tree of this signal")
	backSig := flag.String("backtrack", "", "render the backtrack tree of this signal")
	impactSig := flag.String("impact", "", "render the impact tree of this signal")
	dotOut := flag.String("dot", "", "write Graphviz profiles (exposure + impact) with this file prefix")
	saveMatrix := flag.String("save-matrix", "", "write the permeability matrix to this JSON file")
	loadMatrix := flag.String("load-matrix", "", "read the permeability matrix from this JSON file instead of -source")
	flag.Parse()

	var p *core.Permeability
	if *loadMatrix != "" {
		data, err := os.ReadFile(*loadMatrix)
		if err != nil {
			return err
		}
		p, err = core.UnmarshalPermeability(target.NewSystem(), data)
		if err != nil {
			return err
		}
		*source = "file"
	}
	switch *source {
	case "file":
		// Loaded above.
	case "paper":
		p = paper.Table1()
	case "measure":
		opts := experiment.DefaultOptions(*seed)
		opts.Workers = *workers
		fmt.Fprintf(os.Stderr, "measuring permeabilities: %d injections per input over %d cases...\n",
			*perInput, len(opts.Cases))
		res, err := experiment.EstimatePermeability(context.Background(), opts, *perInput)
		if err != nil {
			return err
		}
		p = res.Matrix
	default:
		return fmt.Errorf("unknown -source %q", *source)
	}

	if *saveMatrix != "" {
		data, err := p.MarshalJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*saveMatrix, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "matrix written to %s\n", *saveMatrix)
	}

	fmt.Println(report.Table1(p))

	sys := p.System()
	fmt.Println("Module measures:")
	fmt.Printf("%-8s %22s %24s %16s\n", "Module", "relative permeability", "non-weighted permeability", "exposure")
	for _, id := range sys.ModuleIDs() {
		rel, err := p.RelativePermeability(id)
		if err != nil {
			return err
		}
		nw, err := p.NonWeightedPermeability(id)
		if err != nil {
			return err
		}
		x, err := p.ModuleExposure(id)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %22.3f %24.3f %16.3f\n", id, rel, nw, x)
	}
	fmt.Println()

	pr, err := core.BuildProfile(p)
	if err != nil {
		return err
	}
	fmt.Println(report.ProfileFigure(pr, core.ByExposure, "Signal error exposure profile (Figure 5)"))
	fmt.Println(report.ProfileFigure(pr, core.ByImpact, "Signal impact profile (Figure 6)"))

	if *dotOut != "" {
		for metric, name := range map[core.Metric]string{
			core.ByExposure: "exposure",
			core.ByImpact:   "impact",
		} {
			path := *dotOut + "-" + name + ".dot"
			if err := os.WriteFile(path, []byte(report.DotProfile(pr, metric, name)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	if *traceSig != "" {
		tree, err := core.BuildTraceTree(sys, model.SignalID(*traceSig))
		if err != nil {
			return err
		}
		fmt.Println(tree.Render())
	}
	if *backSig != "" {
		tree, err := core.BuildBacktrackTree(sys, model.SignalID(*backSig))
		if err != nil {
			return err
		}
		fmt.Println(tree.Render())
	}
	if *impactSig != "" {
		fig, err := report.Figure4(p, model.SignalID(*impactSig), target.SigTOC2)
		if err != nil {
			return err
		}
		fmt.Println(fig)
	}
	return nil
}
