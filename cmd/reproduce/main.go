// Command reproduce regenerates every table and figure of the paper's
// evaluation, in two modes:
//
//   - paper: feed the published Table 1 permeabilities into the analysis
//     framework and regenerate the derived artifacts exactly (Tables 2,
//     3, 5; Figures 4, 5, 6).
//   - measured: run the full fault-injection campaigns on the
//     reimplemented target and regenerate everything from scratch
//     (Tables 1–5, Figures 3–6), at the paper's campaign sizes.
//
// Usage:
//
//	reproduce [-mode both|paper|measured] [-quick] [-exact] [-artifact all|table1|...|figure6]
//
// With -dispatch (or -checkpoint, which implies it) the measured-mode
// campaigns run their shards in worker subprocesses — re-execs of this
// binary in a hidden worker mode — with per-shard deadlines, retries
// and integrity checks; -checkpoint journals finished shards so a
// killed reproduction resumes where it stopped. Results are
// byte-identical either way.
//
// With -fleet (worker-agent addresses, started with reproduce
// -worker-listen) the shards are dispatched over the network with
// heartbeats, straggler re-dispatch and reconnect; an unreachable
// fleet degrades to subprocess and then in-process execution, and a
// -checkpoint journal resumes across transports.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/ea"
	"repro/internal/experiment"
	"repro/internal/paper"
	"repro/internal/report"
	"repro/internal/sut"
	"repro/internal/target"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

type sizes struct {
	perInput  int // permeability campaign, per module input
	perSignal int // input-coverage campaign, per system input
	ram       int // internal campaign RAM locations
	stack     int // internal campaign stack locations
}

func fullSizes() sizes  { return sizes{perInput: 2000, perSignal: 2000, ram: 150, stack: 50} }
func quickSizes() sizes { return sizes{perInput: 100, perSignal: 100, ram: 30, stack: 15} }

func run() error {
	mode := flag.String("mode", "both", "paper, measured, or both")
	targetName := flag.String("target", "",
		"registered system under test (reproduce regenerates the paper's artifacts, so only the arrestment target is valid; see inject -target for campaigns on other targets)")
	artifact := flag.String("artifact", "all", "one of all, table1..table5, figure3..figure6, extensions")
	quick := flag.Bool("quick", false, "reduced campaign sizes for a fast pass")
	exact := flag.Bool("exact", false,
		"run full fixed-size grids instead of adaptive pruning + early stopping (measured mode)")
	seed := flag.Int64("seed", 1, "campaign seed")
	workers := flag.Int("workers", 8, "campaign parallelism")
	shards := flag.Int("shards", 0, "plan shards (0 = default)")
	benchOut := flag.String("bench-out", "BENCH_campaigns.json",
		"campaign timing report path (measured mode; empty disables)")
	dispatchMode := flag.Bool("dispatch", false,
		"run measured-mode shards in fault-tolerant worker subprocesses")
	checkpoint := flag.String("checkpoint", "",
		"shard journal enabling kill/resume (implies -dispatch)")
	shardTimeout := flag.Duration("shard-timeout", 0,
		"per-shard worker deadline, e.g. 2m (0 = default)")
	retries := flag.Int("retries", 0,
		"shard retry budget (0 = default, -1 disables)")
	workerShard := flag.Bool("worker-shard", false,
		"internal: serve campaign shards to a parent dispatcher on stdin/stdout")
	fleet := flag.String("fleet", "",
		"comma-separated worker-agent addresses (host:port) for networked shard dispatch (implies -dispatch)")
	fleetListen := flag.String("fleet-listen", "",
		"also accept worker-agent registrations on this address (coordinator side of -worker-connect)")
	heartbeat := flag.Duration("heartbeat", 0,
		"fleet worker heartbeat interval, e.g. 500ms (0 = default, negative disables)")
	workerListen := flag.String("worker-listen", "",
		"run as a networked worker agent serving campaign shards on this address")
	workerConnect := flag.String("worker-connect", "",
		"run as a networked worker agent registering with a coordinator at this address")
	obsAddr := flag.String("obs-addr", "",
		"serve /metrics, /healthz, the live /dash dashboard, the /events SSE stream, /debug/vars and /debug/pprof on this address (e.g. localhost:9090)")
	eventsOut := flag.String("events-out", "",
		"stream NDJSON trace span/event records to this file (- for stderr); analyze with adaptcheck -mode trace")
	progress := flag.Bool("progress", false,
		"live campaign progress line on stderr (~1 Hz)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := experiment.ValidateFleetFlags(*fleet, *fleetListen, *workerListen, *workerConnect, *heartbeat, *workerShard); err != nil {
		return err
	}
	if *workerShard {
		return experiment.ServeWorker(ctx, os.Getenv(experiment.WorkerSpecEnv), os.Stdin, os.Stdout)
	}
	if *workerListen != "" || *workerConnect != "" {
		stopTelemetry, err := experiment.StartTelemetry(experiment.TelemetryFlags{
			ObsAddr: *obsAddr, EventsOut: *eventsOut, Progress: *progress,
		}, os.Stderr)
		if err != nil {
			return err
		}
		defer stopTelemetry()
		return experiment.RunWorkerAgent(ctx, *workerListen, *workerConnect, os.Stderr)
	}
	fleetMode := *fleet != "" || *fleetListen != ""
	if err := experiment.ValidateDispatchFlags(*workers, *shards, *shardTimeout, *retries, *checkpoint, *dispatchMode || fleetMode); err != nil {
		return err
	}
	if tgt, err := sut.Lookup(*targetName); err != nil {
		return err
	} else if tgt.Name() != sut.DefaultTarget {
		return fmt.Errorf("-target %s: reproduce regenerates the paper's artifacts on the %s target only; use inject -target %s for campaigns on other targets",
			tgt.Name(), sut.DefaultTarget, tgt.Name())
	}
	stopTelemetry, err := experiment.StartTelemetry(experiment.TelemetryFlags{
		ObsAddr: *obsAddr, EventsOut: *eventsOut, Progress: *progress,
	}, os.Stderr)
	if err != nil {
		return err
	}
	defer stopTelemetry()

	want := func(name string) bool {
		if name == "extensions" {
			// The extension campaigns are opt-in, not part of "all".
			return *artifact == "extensions"
		}
		return *artifact == "all" || *artifact == name
	}
	sz := fullSizes()
	if *quick {
		sz = quickSizes()
	}

	if *mode == "paper" || *mode == "both" {
		header("PAPER MODE: analytical reproduction from the published Table 1")
		if err := paperMode(want); err != nil {
			return err
		}
	}
	if *mode == "measured" || *mode == "both" {
		header("MEASURED MODE: end-to-end reproduction on the reimplemented target")
		df := dispatchFlags{
			enabled:     *dispatchMode || *checkpoint != "" || fleetMode,
			checkpoint:  *checkpoint,
			timeout:     *shardTimeout,
			retries:     *retries,
			fleet:       *fleet,
			fleetListen: *fleetListen,
			heartbeat:   *heartbeat,
		}
		if err := measuredMode(ctx, want, sz, *seed, *workers, *shards, *exact, *benchOut, df); err != nil {
			return err
		}
	}
	if *mode != "paper" && *mode != "measured" && *mode != "both" {
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	return nil
}

func header(s string) {
	line := strings.Repeat("=", len(s))
	fmt.Printf("%s\n%s\n%s\n\n", line, s, line)
}

func section(s string) {
	fmt.Printf("--- %s %s\n\n", s, strings.Repeat("-", 60-len(s)))
}

// analyticalArtifacts renders everything derivable from a permeability
// matrix alone.
func analyticalArtifacts(want func(string) bool, p *core.Permeability) error {
	pr, err := core.BuildProfile(p)
	if err != nil {
		return err
	}
	th := core.DefaultThresholds()

	if want("table1") {
		section("Table 1")
		fmt.Println(report.Table1(p))
	}
	if want("table2") {
		section("Table 2")
		fmt.Println(report.Table2(pr, core.SelectPA(pr, th)))
	}
	if want("table3") {
		section("Table 3")
		inPA := map[string]bool{}
		for _, n := range target.PASet() {
			inPA[n] = true
		}
		var rows []report.Table3Row
		for _, spec := range target.AllEASpecs() {
			a, err := ea.New(spec)
			if err != nil {
				return err
			}
			rows = append(rows, report.Table3Row{
				Name: spec.Name, Signal: spec.Signal,
				InEH: true, InPA: inPA[spec.Name], Cost: a.Cost(),
			})
		}
		fmt.Println(report.Table3(rows))
	}
	if want("figure4") {
		section("Figure 4")
		fig, err := report.Figure4(p, target.SigPulscnt, target.SigTOC2)
		if err != nil {
			return err
		}
		fmt.Println(fig)
	}
	if want("table5") {
		section("Table 5")
		fmt.Println(report.Table5(pr, target.SigTOC2))
	}
	if want("figure5") {
		section("Figure 5")
		fmt.Println(report.ProfileFigure(pr, core.ByExposure, "Exposure profile of target system"))
	}
	if want("figure6") {
		section("Figure 6")
		fmt.Println(report.ProfileFigure(pr, core.ByImpact, "Impact profile of target system"))
	}

	section("Selections")
	fmt.Println("EH :", core.SelectEH(p.System()).Selected())
	fmt.Println("PA :", core.SelectPA(pr, th).Selected())
	fmt.Println("EXT:", core.SelectExtended(pr, th).Selected())
	fmt.Println()
	return nil
}

func paperMode(want func(string) bool) error {
	return analyticalArtifacts(want, paper.Table1())
}

// dispatchFlags carries the subprocess-dispatcher selection from the
// command line into measured mode.
type dispatchFlags struct {
	enabled     bool
	checkpoint  string
	timeout     time.Duration
	retries     int
	fleet       string
	fleetListen string
	heartbeat   time.Duration
}

func measuredMode(ctx context.Context, want func(string) bool, sz sizes, seed int64, workers, shards int, exact bool, benchOut string, df dispatchFlags) error {
	opts := experiment.DefaultOptions(seed)
	opts.Workers = workers
	opts.Shards = shards
	opts.Adaptive = !exact // before SelfDispatch: the worker spec snapshots opts
	opts.Timings = campaign.NewCollector()
	if df.enabled {
		spec := experiment.WorkerSpec{
			PerInput: sz.perInput, PerSignal: sz.perSignal,
			RAMLocations: sz.ram, StackLocations: sz.stack,
			PerModel: sz.perSignal / 2, RecoveryRAM: sz.ram / 2, RecoveryStack: sz.stack / 2,
		}
		if df.fleet != "" || df.fleetListen != "" {
			addrs, err := experiment.ParseFleet(df.fleet)
			if err != nil {
				return err
			}
			if err := experiment.FleetDispatch(&opts, spec, "-worker-shard", addrs, df.fleetListen,
				df.heartbeat, df.checkpoint, df.timeout, df.retries, os.Stderr); err != nil {
				return err
			}
		} else if err := experiment.SelfDispatch(&opts, spec, "-worker-shard",
			df.checkpoint, df.timeout, df.retries, os.Stderr); err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "permeability campaign: %d per input x 13 inputs...\n", sz.perInput)
	perm, err := experiment.EstimatePermeability(ctx, opts, sz.perInput)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "  %d runs\n", perm.TotalRuns)

	if err := analyticalArtifacts(want, perm.Matrix); err != nil {
		return err
	}

	section("Paper vs measured permeabilities")
	fmt.Println(report.PermeabilityComparison(paper.Table1(), perm.Matrix))

	if want("table4") {
		fmt.Fprintf(os.Stderr, "input-coverage campaign: %d per signal x 4 signals...\n", sz.perSignal)
		cov, err := experiment.InputCoverage(ctx, opts, sz.perSignal, nil)
		if err != nil {
			return err
		}
		section("Table 4")
		fmt.Println(report.Table4(cov, target.EHSet()))
	}
	if want("figure3") {
		fmt.Fprintf(os.Stderr, "internal-coverage campaign: %d RAM + %d stack locations x %d cases...\n",
			sz.ram, sz.stack, len(opts.Cases))
		internal, err := experiment.InternalCoverage(ctx, opts, sz.ram, sz.stack)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  %d runs\n", internal.Total.Runs)
		section("Figure 3")
		fmt.Println(report.Figure3(internal))
		section("Detection latency (internal error model)")
		fmt.Println(report.LatencySummary("time from first corruption to first detection", internal.Total.SetLatenciesMs))
	}
	if want("extensions") {
		fmt.Fprintln(os.Stderr, "extension campaigns: error-model sensitivity + recovery study...")
		ms, err := experiment.ErrorModelSensitivity(ctx, opts, sz.perSignal/2)
		if err != nil {
			return err
		}
		section("Extension: error-model sensitivity")
		fmt.Println(report.ModelSensitivity(ms))
		rs, err := experiment.RecoveryStudy(ctx, opts, sz.ram/2, sz.stack/2, nil)
		if err != nil {
			return err
		}
		section("Extension: recovery study")
		fmt.Println(report.RecoveryTable(rs))
	}
	experiment.PrintRetrySummary(os.Stderr, opts.Timings)
	if err := experiment.WriteCampaignTimings(benchOut, opts.Seed, opts.Workers, opts.Timings); err != nil {
		return err
	}
	if benchOut != "" {
		fmt.Fprintf(os.Stderr, "campaign timings written to %s\n", benchOut)
	}
	return nil
}
