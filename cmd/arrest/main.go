// Command arrest runs one aircraft-arrestment scenario on the simulated
// target and reports the trajectory and the failure classification.
// With -flip it becomes a single-run fault-injection debugger in the
// spirit of the authors' FI tool: inject one transient bit-flip, deploy
// the full assertion bank, and report which assertions fired and where
// the run diverged from the golden run.
//
// Usage:
//
//	arrest -mass 12000 -velocity 65 [-seed 1] [-interval 1000]
//	arrest -flip PACNT:3@2000          # flip bit 3 of PACNT's read at 2 s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/failure"
	"repro/internal/fi"
	"repro/internal/model"
	"repro/internal/target"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arrest:", err)
		os.Exit(1)
	}
}

func run() error {
	mass := flag.Float64("mass", 12000, "aircraft mass in kg")
	velocity := flag.Float64("velocity", 65, "engaging velocity in m/s")
	seed := flag.Int64("seed", 1, "sensor-noise seed")
	interval := flag.Int64("interval", 1000, "trajectory print interval in ms")
	maxMs := flag.Int64("max", 30000, "maximum simulated time in ms")
	flipSpec := flag.String("flip", "", "inject one transient flip: signal:bit@ms (e.g. PACNT:3@2000)")
	flag.Parse()

	if *flipSpec != "" {
		return debugInjection(*mass, *velocity, *seed, *maxMs, *flipSpec)
	}

	rig, err := target.NewRig(target.DefaultConfig(*mass, *velocity, *seed))
	if err != nil {
		return err
	}
	fmt.Printf("arrestment: %.0f kg at %.1f m/s (seed %d)\n\n", *mass, *velocity, *seed)
	fmt.Printf("%8s %8s %8s %9s %9s %9s %7s %5s %5s\n",
		"t(ms)", "x(m)", "v(m/s)", "SetValue", "IsValue", "OutValue", "i", "slow", "stop")

	print := func() {
		fmt.Printf("%8d %8.1f %8.2f %9d %9d %9d %7d %5d %5d\n",
			rig.Sched.NowMs(), rig.Plant.Distance(), rig.Plant.Velocity(),
			rig.Bus.Peek(target.SigSetValue), rig.Bus.Peek(target.SigIsValue),
			rig.Bus.Peek(target.SigOutValue), rig.Bus.Peek(target.SigI),
			rig.Bus.Peek(target.SigSlowSpeed), rig.Bus.Peek(target.SigStopped))
	}
	print()
	arrested := false
	for rig.Sched.NowMs() < *maxMs {
		if err := rig.RunFor(*interval); err != nil {
			return err
		}
		print()
		if rig.Arrested() {
			arrested = true
			break
		}
	}
	rep := failure.Classify(rig.Plant, arrested, failure.DefaultLimits())
	fmt.Printf("\n%s\n", rep)
	fmt.Printf("arrest time %.2f s, force limit %.0f kN\n", rep.ArrestTimeS, rep.ForceLimitN/1000)
	return nil
}

// parseFlip parses "signal:bit@ms".
func parseFlip(spec string) (model.SignalID, uint8, int64, error) {
	colon := strings.Index(spec, ":")
	at := strings.Index(spec, "@")
	if colon < 1 || at < colon+2 || at == len(spec)-1 {
		return "", 0, 0, fmt.Errorf("bad -flip %q, want signal:bit@ms", spec)
	}
	sig := model.SignalID(spec[:colon])
	bit, err := strconv.ParseUint(spec[colon+1:at], 10, 8)
	if err != nil {
		return "", 0, 0, fmt.Errorf("bad bit in -flip %q: %v", spec, err)
	}
	ms, err := strconv.ParseInt(spec[at+1:], 10, 64)
	if err != nil || ms < 0 {
		return "", 0, 0, fmt.Errorf("bad time in -flip %q", spec)
	}
	return sig, uint8(bit), ms, nil
}

// debugInjection runs a golden run and one injected run, then reports
// detections and per-signal divergence.
func debugInjection(mass, velocity float64, seed, maxMs int64, spec string) error {
	sig, bit, fromMs, err := parseFlip(spec)
	if err != nil {
		return err
	}
	if _, ok := rigSignalCheck(sig); !ok {
		return fmt.Errorf("unknown signal %s", sig)
	}
	cfg := target.DefaultConfig(mass, velocity, seed)

	runOne := func(inject bool) (*trace.Trace, *fi.ReadFlip, []string, int64, error) {
		rig, err := target.NewRig(cfg)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		bank, err := target.NewBank(rig, target.EHSet())
		if err != nil {
			return nil, nil, nil, 0, err
		}
		rig.Sched.OnPostSlot(bank.Hook)

		var flip *fi.ReadFlip
		if inject {
			consumers := rig.Sys.ConsumersOf(sig)
			if len(consumers) == 0 {
				return nil, nil, nil, 0, fmt.Errorf("signal %s has no consuming module to observe the flip", sig)
			}
			flip = &fi.ReadFlip{Port: consumers[0], Bit: bit, FromMs: fromMs}
			inj := fi.NewInjector(flip)
			rig.Sched.OnPreSlot(inj.Hook)
			rig.Bus.OnRead(inj.ReadHook())
		}
		rec := trace.NewRecorder(rig.Bus, target.AllSignals(), 1, maxMs)
		rig.Sched.OnPostSlot(rec.Hook)
		if _, err := rig.RunUntilArrested(maxMs); err != nil {
			return nil, nil, nil, 0, err
		}
		end := rig.Sched.NowMs()
		return rec.Trace(), flip, bank.DetectedBy(), end, nil
	}

	golden, _, _, goldenEnd, err := runOne(false)
	if err != nil {
		return err
	}
	injected, flip, detected, _, err := runOne(true)
	if err != nil {
		return err
	}

	applied, at := flip.Applied()
	fmt.Printf("injection: flip bit %d of %s at first read >= %d ms\n", bit, sig, fromMs)
	if !applied {
		fmt.Println("the flip was never observed (no read after the requested time)")
		return nil
	}
	fmt.Printf("observed at %d ms (golden arrest at %d ms)\n\n", at, goldenEnd)

	fmt.Println("signal divergence (first sample differing from the golden run):")
	for _, s := range target.AllSignals() {
		fd := trace.FirstDifference(golden, injected, s)
		if fd == trace.NoDifference {
			fmt.Printf("  %-12s -\n", s)
		} else {
			fmt.Printf("  %-12s %d ms\n", s, fd)
		}
	}
	if len(detected) == 0 {
		fmt.Println("\nno assertion fired")
	} else {
		fmt.Printf("\nassertions fired: %v\n", detected)
	}
	return nil
}

// rigSignalCheck verifies the signal exists in the target system.
func rigSignalCheck(sig model.SignalID) (*model.Signal, bool) {
	return target.NewSystem().Signal(sig)
}
