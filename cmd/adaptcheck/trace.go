package main

import (
	"fmt"
	"os"

	"repro/internal/traceview"
)

// runTrace analyzes the NDJSON event log a campaign wrote via
// -events-out: it reconstructs the merged span trees (coordinator
// dispatch spans with the workers' shard/plan/exec spans folded in),
// prints each campaign's critical path and the slowest shards with
// queue/exec/net phase attribution, and — with -flame-out — writes the
// folded-stack file flamegraph renderers consume.
func runTrace(eventsPath, flameOut string, top int) error {
	if eventsPath == "" {
		return fmt.Errorf("-mode trace requires -events (the -events-out file of a campaign run)")
	}
	f, err := os.Open(eventsPath)
	if err != nil {
		return err
	}
	defer f.Close()
	a, err := traceview.Parse(f)
	if err != nil {
		return err
	}
	if len(a.Spans) == 0 {
		return fmt.Errorf("%s: no span records — was the campaign run with -events-out?", eventsPath)
	}
	if err := traceview.WriteReport(os.Stdout, a, top); err != nil {
		return err
	}
	if flameOut != "" {
		out, err := os.Create(flameOut)
		if err != nil {
			return err
		}
		if err := traceview.WriteFolded(out, a); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("adaptcheck: folded flamegraph stacks written to %s\n", flameOut)
	}
	return nil
}
