// Command adaptcheck verifies an adaptive permeability campaign
// against its exact reference. It consumes the per-edge sample files
// written by propan -save-samples (one from an -exact run, one from an
// adaptive run over the same seed and sizes) and checks:
//
//   - both campaigns measured the same set of edges;
//   - the adaptive campaign never executed more trials than the exact
//     one on any edge (adaptive trials are a prefix of the exact plan);
//   - every edge's estimates agree within Wilson-interval tolerance:
//     the two intervals at the given z must intersect;
//   - the adaptive run saved injections (total_runs < planned_runs),
//     with planned_runs matching the exact campaign's volume.
//
// With -bench, the adaptive BENCH_campaigns.json is also audited: the
// permeability row must account runs_planned = runs_executed +
// runs_saved with runs_saved > 0.
//
// With -mode liveness the tool audits the adaptive layer's def/use
// pruning on non-arrestment targets in-process: for each requested
// registered target (default: every non-arrestment entry) it executes a
// sample of the very injections the liveness profile classifies masked
// and requires each witness run to be indistinguishable from the golden
// run — same completion time and no difference on any recorded signal.
// Any divergence is a pruning unsoundness and fails the audit.
//
// With -mode trace the tool analyzes the NDJSON event log written by a
// campaign's -events-out flag: it reconstructs the merged span trees
// (including worker-side spans folded in over the dispatch protocols),
// prints each campaign trace's critical path and the slowest shards
// with queue/exec/network phase attribution, and with -flame-out
// writes folded stacks for flamegraph renderers.
//
// With -mode analytic the tool instead validates the analytic
// propagation engine (internal/analytic) in-process:
//
//   - the three placement rankings (exposure, impact, criticality) of
//     the analytic profile are byte-identical to the tree-based
//     reference on the paper's arrestment matrix;
//   - on the embedded cyclic fixture, fixpoint impacts agree with
//     Monte Carlo estimation within analytic.CyclicTolerance and are
//     never below it (the fixpoint is a guaranteed overestimate);
//   - with -bench, the solver timing rows written by place -bench-out
//     satisfy the performance contract: full ranking + sweep under
//     50 ms per operation, at least 100× faster than the measured
//     permeability campaign, and incremental re-analysis at least 10×
//     faster than a cold solve.
//
// Usage:
//
//	adaptcheck -exact exact.json -adaptive adaptive.json [-bench BENCH_adaptive.json] [-z 1.96]
//	adaptcheck -mode liveness [-target tank,multiout] [-per-class 8]
//	adaptcheck -mode analytic [-bench BENCH_analytic.json]
//	adaptcheck -mode trace -events events.ndjson [-flame-out stacks.folded] [-top 5]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/paper"
	"repro/internal/stats"
	"repro/internal/sut"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptcheck:", err)
		os.Exit(1)
	}
}

// sampleEdge mirrors one row of the samples document propan writes.
type sampleEdge struct {
	Module    string `json:"module"`
	In        int    `json:"in"`
	Out       int    `json:"out"`
	From      string `json:"from"`
	To        string `json:"to"`
	Successes int    `json:"successes"`
	Trials    int    `json:"trials"`
}

type samplesDoc struct {
	PlannedRuns int          `json:"planned_runs"`
	TotalRuns   int          `json:"total_runs"`
	ActiveRuns  int          `json:"active_runs"`
	Edges       []sampleEdge `json:"edges"`
}

type benchRow struct {
	Campaign     string  `json:"campaign"`
	Runs         int     `json:"runs"`
	WallS        float64 `json:"wall_s"`
	RunsPlanned  int     `json:"runs_planned"`
	RunsExecuted int     `json:"runs_executed"`
	RunsSaved    int     `json:"runs_saved"`
}

type benchDoc struct {
	Campaigns []benchRow `json:"campaigns"`
}

func readSamples(path string) (*samplesDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc samplesDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Edges) == 0 {
		return nil, fmt.Errorf("%s: no edges", path)
	}
	return &doc, nil
}

func edgeKey(e sampleEdge) string {
	return fmt.Sprintf("%s[%d->%d] %s->%s", e.Module, e.In, e.Out, e.From, e.To)
}

func run() error {
	mode := flag.String("mode", "samples",
		"what to check: samples (adaptive vs exact campaign), liveness (pruning soundness per target), analytic (solver equivalence and speed) or trace (campaign event-log analysis)")
	exactPath := flag.String("exact", "", "samples JSON from the exact campaign")
	adaptivePath := flag.String("adaptive", "", "samples JSON from the adaptive campaign")
	benchPath := flag.String("bench", "", "adaptive BENCH_campaigns.json to audit (optional)")
	z := flag.Float64("z", 1.96, "Wilson interval critical value")
	targets := flag.String("target", "",
		"liveness mode: comma-separated registered targets (empty = every non-arrestment entry)")
	perClass := flag.Int("per-class", 8, "liveness mode: masked targets proven per region per case")
	seed := flag.Int64("seed", 1, "liveness mode: campaign seed")
	eventsPath := flag.String("events", "", "trace mode: NDJSON event log from a campaign's -events-out")
	flameOut := flag.String("flame-out", "", "trace mode: write folded flamegraph stacks to this file")
	top := flag.Int("top", 5, "trace mode: how many straggler shards to report")
	flag.Parse()

	switch *mode {
	case "samples":
		// Fall through to the campaign comparison below.
	case "liveness":
		return runLiveness(*targets, *perClass, *seed)
	case "analytic":
		return runAnalytic(*benchPath)
	case "trace":
		return runTrace(*eventsPath, *flameOut, *top)
	default:
		return fmt.Errorf("unknown -mode %q (want samples, liveness, analytic or trace)", *mode)
	}

	if *exactPath == "" || *adaptivePath == "" {
		return fmt.Errorf("both -exact and -adaptive are required")
	}
	if *z <= 0 {
		return fmt.Errorf("-z must be positive (got %v)", *z)
	}

	exact, err := readSamples(*exactPath)
	if err != nil {
		return err
	}
	adaptive, err := readSamples(*adaptivePath)
	if err != nil {
		return err
	}

	if exact.TotalRuns != exact.PlannedRuns {
		return fmt.Errorf("exact campaign executed %d of %d planned runs; is %s really from an -exact run?",
			exact.TotalRuns, exact.PlannedRuns, *exactPath)
	}
	if adaptive.PlannedRuns != exact.PlannedRuns {
		return fmt.Errorf("planned volumes differ: exact %d, adaptive %d — different seeds or sizes?",
			exact.PlannedRuns, adaptive.PlannedRuns)
	}
	if adaptive.TotalRuns >= adaptive.PlannedRuns {
		return fmt.Errorf("adaptive campaign saved nothing: executed %d of %d planned runs",
			adaptive.TotalRuns, adaptive.PlannedRuns)
	}

	exEdges := make(map[string]sampleEdge, len(exact.Edges))
	for _, e := range exact.Edges {
		exEdges[edgeKey(e)] = e
	}

	var violations []string
	maxDelta := 0.0
	for _, a := range adaptive.Edges {
		key := edgeKey(a)
		e, ok := exEdges[key]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: measured adaptively but absent from the exact campaign", key))
			continue
		}
		delete(exEdges, key)
		if a.Trials > e.Trials {
			violations = append(violations,
				fmt.Sprintf("%s: adaptive ran %d trials, exact only %d — not a prefix", key, a.Trials, e.Trials))
			continue
		}
		pe := stats.Proportion{Successes: e.Successes, Trials: e.Trials}
		pa := stats.Proportion{Successes: a.Successes, Trials: a.Trials}
		if d := abs(pe.Estimate() - pa.Estimate()); d > maxDelta {
			maxDelta = d
		}
		eLo, eHi := pe.WilsonCI(*z)
		aLo, aHi := pa.WilsonCI(*z)
		if aLo > eHi || eLo > aHi {
			violations = append(violations, fmt.Sprintf(
				"%s: intervals disjoint — exact %d/%d [%.4f, %.4f], adaptive %d/%d [%.4f, %.4f]",
				key, e.Successes, e.Trials, eLo, eHi, a.Successes, a.Trials, aLo, aHi))
		}
	}
	for key := range exEdges {
		violations = append(violations, fmt.Sprintf("%s: measured exactly but absent from the adaptive campaign", key))
	}

	if *benchPath != "" {
		data, err := os.ReadFile(*benchPath)
		if err != nil {
			return err
		}
		var bench benchDoc
		if err := json.Unmarshal(data, &bench); err != nil {
			return fmt.Errorf("%s: %w", *benchPath, err)
		}
		found := false
		for _, row := range bench.Campaigns {
			if row.Campaign != "permeability" {
				continue
			}
			found = true
			if row.RunsPlanned != row.RunsExecuted+row.RunsSaved {
				violations = append(violations, fmt.Sprintf(
					"bench: runs_planned %d != runs_executed %d + runs_saved %d",
					row.RunsPlanned, row.RunsExecuted, row.RunsSaved))
			}
			if row.RunsSaved <= 0 {
				violations = append(violations,
					fmt.Sprintf("bench: runs_saved %d, want > 0", row.RunsSaved))
			}
			if row.Runs != row.RunsExecuted {
				violations = append(violations, fmt.Sprintf(
					"bench: runs %d != runs_executed %d", row.Runs, row.RunsExecuted))
			}
		}
		if !found {
			violations = append(violations, "bench: no permeability row")
		}
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "adaptcheck:", v)
		}
		return fmt.Errorf("%d violation(s)", len(violations))
	}

	fmt.Printf("adaptcheck: %d edges agree within z=%.2f Wilson intervals (max estimate delta %.4f)\n",
		len(adaptive.Edges), *z, maxDelta)
	fmt.Printf("adaptcheck: adaptive executed %d of %d planned runs (%d saved, %.1f%%)\n",
		adaptive.TotalRuns, adaptive.PlannedRuns, adaptive.PlannedRuns-adaptive.TotalRuns,
		100*float64(adaptive.PlannedRuns-adaptive.TotalRuns)/float64(adaptive.PlannedRuns))
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// runAnalytic validates the analytic solver against the tree-based
// reference and the Monte Carlo estimator, plus (with -bench) the
// timing rows of place -bench-out.
func runAnalytic(benchPath string) error {
	var violations []string

	// 1. Placement-ranking equivalence on the paper's matrix: the
	// analytic profile must rank every metric byte-identically to the
	// tree-based reference, and the values themselves must agree.
	p := paper.Table1()
	ref, err := core.BuildProfile(p)
	if err != nil {
		return err
	}
	got, err := analytic.New().Profile(p)
	if err != nil {
		return err
	}
	for _, m := range []core.Metric{core.ByExposure, core.ByImpact, core.ByCriticality} {
		r, g := ref.Ranked(m), got.Ranked(m)
		if len(r) != len(g) {
			violations = append(violations, fmt.Sprintf("%s ranking: %d vs %d signals", m, len(r), len(g)))
			continue
		}
		for i := range r {
			if r[i].Signal != g[i].Signal {
				violations = append(violations, fmt.Sprintf(
					"%s ranking diverges at #%d: tree %s, analytic %s", m, i+1, r[i].Signal, g[i].Signal))
				break
			}
		}
	}
	for _, sp := range ref.Signals() {
		asp, err := got.Signal(sp.Signal)
		if err != nil {
			return err
		}
		if sp.Exposure != asp.Exposure {
			violations = append(violations, fmt.Sprintf(
				"%s: exposure %v != %v (must be bit-equal)", sp.Signal, asp.Exposure, sp.Exposure))
		}
		if d := abs(sp.Criticality - asp.Criticality); d > 1e-9 {
			violations = append(violations, fmt.Sprintf(
				"%s: criticality differs by %.3g (tree %v, analytic %v)", sp.Signal, d, sp.Criticality, asp.Criticality))
		}
	}

	// 2. Cyclic fixture: fixpoint impacts vs Monte Carlo, within the
	// documented tolerance and never below (FKG overestimate).
	csys, cp := analytic.CyclicFixture()
	eng := analytic.New()
	const mcSamples = 200_000
	maxDelta := 0.0
	for _, s := range csys.SignalIDs() {
		if s == "in" {
			continue
		}
		fix, err := eng.Impact(cp, "in", s)
		if err != nil {
			return err
		}
		mc, err := core.MonteCarloImpact(cp, "in", s, mcSamples, 1)
		if err != nil {
			return err
		}
		d := fix - mc
		if d < -0.004 { // 3σ of the MC estimator at 200k samples
			violations = append(violations, fmt.Sprintf(
				"cyclic in->%s: fixpoint %.4f below Monte Carlo %.4f", s, fix, mc))
		}
		if abs(d) > analytic.CyclicTolerance {
			violations = append(violations, fmt.Sprintf(
				"cyclic in->%s: |fixpoint %.4f - Monte Carlo %.4f| exceeds tolerance %.2f",
				s, fix, mc, analytic.CyclicTolerance))
		}
		if abs(d) > maxDelta {
			maxDelta = abs(d)
		}
	}

	// 3. Performance contract over the rows place -bench-out wrote.
	if benchPath != "" {
		if more, err := auditAnalyticBench(benchPath); err != nil {
			return err
		} else {
			violations = append(violations, more...)
		}
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "adaptcheck:", v)
		}
		return fmt.Errorf("%d violation(s)", len(violations))
	}
	fmt.Println("adaptcheck: analytic rankings byte-identical to tree-based reference on the arrestment matrix")
	fmt.Printf("adaptcheck: cyclic fixpoint within %.3f of Monte Carlo (tolerance %.2f) on %s\n",
		maxDelta, analytic.CyclicTolerance, csys.Name())
	if benchPath != "" {
		fmt.Printf("adaptcheck: solver timing rows in %s meet the performance contract\n", benchPath)
	}
	return nil
}

// auditAnalyticBench checks the solver timing rows: ranking + sweep
// under 50 ms/op and ≥100× faster than the permeability campaign, and
// incremental re-analysis ≥10× faster than a cold solve.
func auditAnalyticBench(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bench benchDoc
	if err := json.Unmarshal(data, &bench); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	rows := make(map[string]benchRow, len(bench.Campaigns))
	for _, row := range bench.Campaigns {
		rows[row.Campaign] = row
	}
	perOp := func(name string) (float64, bool) {
		row, ok := rows[name]
		if !ok || row.Runs <= 0 {
			return 0, false
		}
		return row.WallS / float64(row.Runs), true
	}

	var violations []string
	rank, okRank := perOp("analytic-rank")
	sweep, okSweep := perOp("analytic-sweep")
	if !okRank || !okSweep {
		violations = append(violations, fmt.Sprintf(
			"%s: missing analytic-rank / analytic-sweep rows (run place -bench-out)", path))
	} else {
		if rank+sweep > 0.05 {
			violations = append(violations, fmt.Sprintf(
				"ranking + sweep takes %.1f ms/op, want < 50 ms", (rank+sweep)*1e3))
		}
		if camp, ok := rows["permeability"]; !ok {
			violations = append(violations, fmt.Sprintf(
				"%s: no permeability campaign row — benchmark with place -source measure", path))
		} else if (rank+sweep)*100 > camp.WallS {
			violations = append(violations, fmt.Sprintf(
				"ranking + sweep (%.1f ms) is not 100× faster than the %.1f ms permeability campaign",
				(rank+sweep)*1e3, camp.WallS*1e3))
		}
	}
	cold, okCold := perOp("analytic-cold")
	incr, okIncr := perOp("analytic-incremental")
	if !okCold || !okIncr {
		violations = append(violations, fmt.Sprintf(
			"%s: missing analytic-cold / analytic-incremental rows", path))
	} else if incr*10 > cold {
		violations = append(violations, fmt.Sprintf(
			"incremental re-analysis (%.2f ms/op) is not 10× faster than a cold solve (%.2f ms/op)",
			incr*1e3, cold*1e3))
	}
	return violations, nil
}

// runLiveness audits the adaptive def/use pruning on the requested
// targets: every sampled masked classification must be proved by a
// witness run that matches the golden trace exactly.
func runLiveness(targetList string, perClass int, seed int64) error {
	var names []string
	for _, n := range strings.Split(targetList, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if names == nil {
		for _, n := range sut.Names() {
			if n != sut.DefaultTarget {
				names = append(names, n)
			}
		}
	}
	for _, n := range names {
		if _, err := sut.Lookup(n); err != nil {
			return err
		}
	}

	failed := false
	for _, n := range names {
		opts, err := experiment.DefaultOptionsFor(n, seed)
		if err != nil {
			return err
		}
		opts.Workers = 1
		res, err := experiment.AuditLiveness(context.Background(), opts, perClass)
		if err != nil {
			return err
		}
		fmt.Printf("adaptcheck: %s: %d/%d RAM and %d/%d stack targets masked over %d case(s), %d witness run(s)\n",
			res.Target, res.RAMMasked, res.RAMTargets*res.Cases, res.StackMasked, res.StackTargets*res.Cases,
			res.Cases, res.Proofs)
		if len(res.Violations) > 0 {
			failed = true
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "adaptcheck: %s: %s\n", res.Target, v)
			}
			continue
		}
		fmt.Printf("adaptcheck: %s: every witness matched its golden trace — pruning is sound\n", res.Target)
	}
	if failed {
		return fmt.Errorf("liveness audit found pruning violations")
	}
	return nil
}
