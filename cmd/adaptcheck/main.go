// Command adaptcheck verifies an adaptive permeability campaign
// against its exact reference. It consumes the per-edge sample files
// written by propan -save-samples (one from an -exact run, one from an
// adaptive run over the same seed and sizes) and checks:
//
//   - both campaigns measured the same set of edges;
//   - the adaptive campaign never executed more trials than the exact
//     one on any edge (adaptive trials are a prefix of the exact plan);
//   - every edge's estimates agree within Wilson-interval tolerance:
//     the two intervals at the given z must intersect;
//   - the adaptive run saved injections (total_runs < planned_runs),
//     with planned_runs matching the exact campaign's volume.
//
// With -bench, the adaptive BENCH_campaigns.json is also audited: the
// permeability row must account runs_planned = runs_executed +
// runs_saved with runs_saved > 0.
//
// Usage:
//
//	adaptcheck -exact exact.json -adaptive adaptive.json [-bench BENCH_adaptive.json] [-z 1.96]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptcheck:", err)
		os.Exit(1)
	}
}

// sampleEdge mirrors one row of the samples document propan writes.
type sampleEdge struct {
	Module    string `json:"module"`
	In        int    `json:"in"`
	Out       int    `json:"out"`
	From      string `json:"from"`
	To        string `json:"to"`
	Successes int    `json:"successes"`
	Trials    int    `json:"trials"`
}

type samplesDoc struct {
	PlannedRuns int          `json:"planned_runs"`
	TotalRuns   int          `json:"total_runs"`
	ActiveRuns  int          `json:"active_runs"`
	Edges       []sampleEdge `json:"edges"`
}

type benchDoc struct {
	Campaigns []struct {
		Campaign     string `json:"campaign"`
		Runs         int    `json:"runs"`
		RunsPlanned  int    `json:"runs_planned"`
		RunsExecuted int    `json:"runs_executed"`
		RunsSaved    int    `json:"runs_saved"`
	} `json:"campaigns"`
}

func readSamples(path string) (*samplesDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc samplesDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Edges) == 0 {
		return nil, fmt.Errorf("%s: no edges", path)
	}
	return &doc, nil
}

func edgeKey(e sampleEdge) string {
	return fmt.Sprintf("%s[%d->%d] %s->%s", e.Module, e.In, e.Out, e.From, e.To)
}

func run() error {
	exactPath := flag.String("exact", "", "samples JSON from the exact campaign")
	adaptivePath := flag.String("adaptive", "", "samples JSON from the adaptive campaign")
	benchPath := flag.String("bench", "", "adaptive BENCH_campaigns.json to audit (optional)")
	z := flag.Float64("z", 1.96, "Wilson interval critical value")
	flag.Parse()

	if *exactPath == "" || *adaptivePath == "" {
		return fmt.Errorf("both -exact and -adaptive are required")
	}
	if *z <= 0 {
		return fmt.Errorf("-z must be positive (got %v)", *z)
	}

	exact, err := readSamples(*exactPath)
	if err != nil {
		return err
	}
	adaptive, err := readSamples(*adaptivePath)
	if err != nil {
		return err
	}

	if exact.TotalRuns != exact.PlannedRuns {
		return fmt.Errorf("exact campaign executed %d of %d planned runs; is %s really from an -exact run?",
			exact.TotalRuns, exact.PlannedRuns, *exactPath)
	}
	if adaptive.PlannedRuns != exact.PlannedRuns {
		return fmt.Errorf("planned volumes differ: exact %d, adaptive %d — different seeds or sizes?",
			exact.PlannedRuns, adaptive.PlannedRuns)
	}
	if adaptive.TotalRuns >= adaptive.PlannedRuns {
		return fmt.Errorf("adaptive campaign saved nothing: executed %d of %d planned runs",
			adaptive.TotalRuns, adaptive.PlannedRuns)
	}

	exEdges := make(map[string]sampleEdge, len(exact.Edges))
	for _, e := range exact.Edges {
		exEdges[edgeKey(e)] = e
	}

	var violations []string
	maxDelta := 0.0
	for _, a := range adaptive.Edges {
		key := edgeKey(a)
		e, ok := exEdges[key]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: measured adaptively but absent from the exact campaign", key))
			continue
		}
		delete(exEdges, key)
		if a.Trials > e.Trials {
			violations = append(violations,
				fmt.Sprintf("%s: adaptive ran %d trials, exact only %d — not a prefix", key, a.Trials, e.Trials))
			continue
		}
		pe := stats.Proportion{Successes: e.Successes, Trials: e.Trials}
		pa := stats.Proportion{Successes: a.Successes, Trials: a.Trials}
		if d := abs(pe.Estimate() - pa.Estimate()); d > maxDelta {
			maxDelta = d
		}
		eLo, eHi := pe.WilsonCI(*z)
		aLo, aHi := pa.WilsonCI(*z)
		if aLo > eHi || eLo > aHi {
			violations = append(violations, fmt.Sprintf(
				"%s: intervals disjoint — exact %d/%d [%.4f, %.4f], adaptive %d/%d [%.4f, %.4f]",
				key, e.Successes, e.Trials, eLo, eHi, a.Successes, a.Trials, aLo, aHi))
		}
	}
	for key := range exEdges {
		violations = append(violations, fmt.Sprintf("%s: measured exactly but absent from the adaptive campaign", key))
	}

	if *benchPath != "" {
		data, err := os.ReadFile(*benchPath)
		if err != nil {
			return err
		}
		var bench benchDoc
		if err := json.Unmarshal(data, &bench); err != nil {
			return fmt.Errorf("%s: %w", *benchPath, err)
		}
		found := false
		for _, row := range bench.Campaigns {
			if row.Campaign != "permeability" {
				continue
			}
			found = true
			if row.RunsPlanned != row.RunsExecuted+row.RunsSaved {
				violations = append(violations, fmt.Sprintf(
					"bench: runs_planned %d != runs_executed %d + runs_saved %d",
					row.RunsPlanned, row.RunsExecuted, row.RunsSaved))
			}
			if row.RunsSaved <= 0 {
				violations = append(violations,
					fmt.Sprintf("bench: runs_saved %d, want > 0", row.RunsSaved))
			}
			if row.Runs != row.RunsExecuted {
				violations = append(violations, fmt.Sprintf(
					"bench: runs %d != runs_executed %d", row.Runs, row.RunsExecuted))
			}
		}
		if !found {
			violations = append(violations, "bench: no permeability row")
		}
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "adaptcheck:", v)
		}
		return fmt.Errorf("%d violation(s)", len(violations))
	}

	fmt.Printf("adaptcheck: %d edges agree within z=%.2f Wilson intervals (max estimate delta %.4f)\n",
		len(adaptive.Edges), *z, maxDelta)
	fmt.Printf("adaptcheck: adaptive executed %d of %d planned runs (%d saved, %.1f%%)\n",
		adaptive.TotalRuns, adaptive.PlannedRuns, adaptive.PlannedRuns-adaptive.TotalRuns,
		100*float64(adaptive.PlannedRuns-adaptive.TotalRuns)/float64(adaptive.PlannedRuns))
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
