// Command inject runs the fault-injection coverage campaigns:
//
//   - input: single transient bit-flips at the system inputs (the
//     paper's Section 6.2 experiment, Table 4), plus detection-latency
//     and subsumption analyses
//   - internal: periodic bit-flips in RAM and stack (the paper's
//     Section 7 experiment, Figure 3)
//   - models: coverage across five input error models (sensitivity
//     extension, DESIGN.md index A1)
//   - recovery: failure rates with and without containment (wrappers
//     vs module-internal hardening, guideline R2)
//   - matrix: placement robustness — every requested target crossed
//     with every error model (transient, stuck, burst, delay,
//     omission), reporting detection coverage per placement set
//
// Usage:
//
//	inject -campaign input [-per-signal 2000] [-target tank]
//	inject -campaign internal [-ram 150] [-stack 50] [-exact]
//	inject -campaign models [-per-signal 1000]
//	inject -campaign recovery [-ram 150] [-stack 50]
//	inject -campaign tightness [-per-signal 500]
//	inject -campaign integration [-per-signal 500]
//	inject -campaign matrix [-target tank,multiout] [-errors stuck,burst] [-per-cell 200]
//
// Every campaign accepts -target naming a registered system under test
// (default: the paper's arrestment system; matrix accepts a
// comma-separated list, empty meaning all registered) and -model
// promoting internal/model JSON system descriptions into runnable
// targets for this invocation. Unknown target or error-model names fail
// before any campaign work, listing what is registered.
//
// With -dispatch (or -checkpoint, which implies it) the campaign's
// shards run in worker subprocesses — re-execs of this binary in a
// hidden worker mode — with per-shard deadlines, retries and integrity
// checks; -checkpoint journals finished shards so a killed campaign
// resumes where it stopped. Results are byte-identical either way.
//
// With -fleet (a comma-separated list of worker-agent addresses,
// started with inject -worker-listen) shards are dispatched over the
// network instead, with heartbeats, straggler re-dispatch and
// reconnect on top of the same deadlines, retries and integrity
// checks; -fleet-listen additionally accepts agents that register
// themselves (inject -worker-connect). An unreachable fleet degrades
// to subprocess and then in-process execution. Results remain
// byte-identical, and a -checkpoint journal resumes across transports.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/analytic"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/sut"
	"repro/internal/target"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inject:", err)
		os.Exit(1)
	}
}

// tightnessSteps is the MaxStep sweep of the tightness campaign. The
// worker spec ships the same list, so parent and worker plans agree.
func tightnessSteps() []model.Word { return []model.Word{2, 4, 8, 16, 32, 64} }

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// registerModels loads each JSON system description and registers it as
// a generic target, returning the raw documents for the worker spec.
func registerModels(paths []string) ([]json.RawMessage, error) {
	var raw []json.RawMessage
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		t, err := sut.RegisterModelJSON(data)
		if err != nil {
			return nil, fmt.Errorf("-model %s: %w", path, err)
		}
		fmt.Fprintf(os.Stderr, "registered target %q from %s\n", t.Name(), path)
		raw = append(raw, json.RawMessage(data))
	}
	return raw, nil
}

// validateMatrixFlags resolves the matrix target list and error-model
// menu before any campaign work, failing with the registered names.
func validateMatrixFlags(targets, errModels []string) error {
	for _, name := range targets {
		if _, err := sut.Lookup(name); err != nil {
			return err
		}
	}
	known := make(map[string]bool)
	for _, m := range experiment.MatrixErrorModels() {
		known[m] = true
	}
	for _, m := range errModels {
		if !known[m] {
			return fmt.Errorf("unknown error model %q (available: %s)",
				m, strings.Join(experiment.MatrixErrorModels(), ", "))
		}
	}
	return nil
}

func run() error {
	camp := flag.String("campaign", "input",
		"campaign: input, internal, models, recovery, tightness, integration or matrix")
	targetName := flag.String("target", "",
		"registered system under test (empty = arrestment; matrix: comma-separated list, empty = all)")
	modelPaths := flag.String("model", "",
		"comma-separated internal/model JSON files to register as targets")
	errModels := flag.String("errors", "",
		"matrix campaign error models, comma-separated (empty = all: transient, stuck, burst, delay, omission)")
	perSignal := flag.Int("per-signal", 2000, "injections per system input (input campaign)")
	perCell := flag.Int("per-cell", 200, "injections per target x error-model cell (matrix campaign)")
	ram := flag.Int("ram", 150, "RAM locations (internal campaign)")
	stack := flag.Int("stack", 50, "stack locations (internal campaign)")
	seed := flag.Int64("seed", 1, "campaign seed")
	workers := flag.Int("workers", 8, "campaign parallelism")
	shards := flag.Int("shards", 0, "plan shards (0 = default)")
	exact := flag.Bool("exact", false,
		"run full fixed-size grids instead of adaptive pruning + early stopping (internal, recovery)")
	benchOut := flag.String("bench-out", "BENCH_campaigns.json",
		"campaign timing report path (empty disables)")
	dispatchMode := flag.Bool("dispatch", false,
		"run shards in fault-tolerant worker subprocesses")
	checkpoint := flag.String("checkpoint", "",
		"shard journal enabling kill/resume (implies -dispatch)")
	shardTimeout := flag.Duration("shard-timeout", 0,
		"per-shard worker deadline, e.g. 2m (0 = default)")
	retries := flag.Int("retries", 0,
		"shard retry budget (0 = default, -1 disables)")
	workerShard := flag.Bool("worker-shard", false,
		"internal: serve campaign shards to a parent dispatcher on stdin/stdout")
	fleet := flag.String("fleet", "",
		"comma-separated worker-agent addresses (host:port) for networked shard dispatch (implies -dispatch)")
	fleetListen := flag.String("fleet-listen", "",
		"also accept worker-agent registrations on this address (coordinator side of -worker-connect)")
	heartbeat := flag.Duration("heartbeat", 0,
		"fleet worker heartbeat interval, e.g. 500ms (0 = default, negative disables)")
	workerListen := flag.String("worker-listen", "",
		"run as a networked worker agent serving campaign shards on this address")
	workerConnect := flag.String("worker-connect", "",
		"run as a networked worker agent registering with a coordinator at this address")
	obsAddr := flag.String("obs-addr", "",
		"serve /metrics, /healthz, the live /dash dashboard, the /events SSE stream, /debug/vars and /debug/pprof on this address (e.g. localhost:9090)")
	eventsOut := flag.String("events-out", "",
		"stream NDJSON trace span/event records to this file (- for stderr); analyze with adaptcheck -mode trace")
	progress := flag.Bool("progress", false,
		"live campaign progress line on stderr (~1 Hz)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := experiment.ValidateFleetFlags(*fleet, *fleetListen, *workerListen, *workerConnect, *heartbeat, *workerShard); err != nil {
		return err
	}
	if *workerShard {
		return experiment.ServeWorker(ctx, os.Getenv(experiment.WorkerSpecEnv), os.Stdin, os.Stdout)
	}
	if *workerListen != "" || *workerConnect != "" {
		stopTelemetry, err := experiment.StartTelemetry(experiment.TelemetryFlags{
			ObsAddr: *obsAddr, EventsOut: *eventsOut, Progress: *progress,
		}, os.Stderr)
		if err != nil {
			return err
		}
		defer stopTelemetry()
		return experiment.RunWorkerAgent(ctx, *workerListen, *workerConnect, os.Stderr)
	}
	fleetMode := *fleet != "" || *fleetListen != ""
	if err := experiment.ValidateDispatchFlags(*workers, *shards, *shardTimeout, *retries, *checkpoint, *dispatchMode || fleetMode); err != nil {
		return err
	}

	// Register -model targets, then validate every name-shaped flag
	// before any campaign work: unknown targets and error models fail
	// here, listing what is available.
	modelJSON, err := registerModels(splitList(*modelPaths))
	if err != nil {
		return err
	}
	matrixTargets := splitList(*targetName)
	matrixModels := splitList(*errModels)
	if err := validateMatrixFlags(matrixTargets, matrixModels); err != nil {
		return err
	}
	if *camp != "matrix" {
		if len(matrixTargets) > 1 {
			return fmt.Errorf("-target lists %d targets; only -campaign matrix crosses targets", len(matrixTargets))
		}
		if len(matrixModels) > 0 {
			return fmt.Errorf("-errors only applies to -campaign matrix")
		}
	}
	singleTarget := ""
	if len(matrixTargets) == 1 {
		singleTarget = matrixTargets[0]
	}
	tgt, err := sut.Lookup(singleTarget)
	if err != nil {
		return err
	}

	stopTelemetry, err := experiment.StartTelemetry(experiment.TelemetryFlags{
		ObsAddr: *obsAddr, EventsOut: *eventsOut, Progress: *progress,
	}, os.Stderr)
	if err != nil {
		return err
	}
	defer stopTelemetry()

	opts, err := experiment.DefaultOptionsFor(tgt.Name(), *seed)
	if err != nil {
		return err
	}
	opts.Workers = *workers
	opts.Shards = *shards
	opts.Adaptive = !*exact // before SelfDispatch: the worker spec snapshots opts
	opts.Timings = campaign.NewCollector()
	if *dispatchMode || *checkpoint != "" || fleetMode {
		steps := tightnessSteps()
		spec := experiment.WorkerSpec{
			PerSignal: *perSignal, RAMLocations: *ram, StackLocations: *stack,
			PerModel: *perSignal, RecoveryRAM: *ram, RecoveryStack: *stack,
			PerStep: *perSignal, Steps: steps, IntegPerSignal: *perSignal,
			MatrixTargets: matrixTargets, MatrixModels: matrixModels, MatrixPerCell: *perCell,
			ModelJSON: modelJSON,
		}
		if fleetMode {
			addrs, err := experiment.ParseFleet(*fleet)
			if err != nil {
				return err
			}
			if err := experiment.FleetDispatch(&opts, spec, "-worker-shard", addrs, *fleetListen,
				*heartbeat, *checkpoint, *shardTimeout, *retries, os.Stderr); err != nil {
				return err
			}
		} else if err := experiment.SelfDispatch(&opts, spec, "-worker-shard",
			*checkpoint, *shardTimeout, *retries, os.Stderr); err != nil {
			return err
		}
	}

	switch *camp {
	case "input":
		fmt.Fprintf(os.Stderr, "input-model campaign: %d injections per signal over %d cases...\n",
			*perSignal, len(opts.Cases))
		res, err := experiment.InputCoverage(ctx, opts, *perSignal, nil)
		if err != nil {
			return err
		}
		fmt.Println(report.Table4(res, tgt.EHSet()))
		for _, row := range res.Rows {
			if row.Signal == target.SigPACNT {
				fmt.Println(report.Subsumption(row, tgt.EHSet()))
				if sub := report.SubsumedBy(row, target.EA4); len(sub) > 0 {
					fmt.Printf("fully subsumed by EA4: %v\n\n", sub)
				}
			}
		}
		fmt.Println(report.LatencySummary("Detection latency (time from corruption to first detection)",
			res.All.SetLatenciesMs))
	case "models":
		fmt.Fprintf(os.Stderr, "error-model sensitivity: %d injections per model...\n", *perSignal)
		res, err := experiment.ErrorModelSensitivity(ctx, opts, *perSignal)
		if err != nil {
			return err
		}
		fmt.Println(report.ModelSensitivity(res))
	case "recovery":
		fmt.Fprintf(os.Stderr, "recovery study: %d RAM + %d stack locations x %d cases x 3 arms...\n",
			*ram, *stack, len(opts.Cases))
		res, err := experiment.RecoveryStudy(ctx, opts, *ram, *stack, nil)
		if err != nil {
			return err
		}
		fmt.Println(report.RecoveryTable(res))
	case "tightness":
		steps := tightnessSteps()
		fmt.Fprintf(os.Stderr, "EA tightness sweep: %d injections per setting...\n", *perSignal)
		res, err := experiment.EATightnessStudy(ctx, opts, *perSignal, steps)
		if err != nil {
			return err
		}
		fmt.Println(report.TightnessTable(res))
	case "integration":
		fmt.Fprintf(os.Stderr, "EA integration-mode study: %d injections...\n", *perSignal)
		res, err := experiment.EAIntegrationStudy(ctx, opts, *perSignal)
		if err != nil {
			return err
		}
		fmt.Println(report.IntegrationTable(res))
	case "internal":
		fmt.Fprintf(os.Stderr, "internal-model campaign: %d RAM + %d stack locations x %d cases...\n",
			*ram, *stack, len(opts.Cases))
		res, err := experiment.InternalCoverage(ctx, opts, *ram, *stack)
		if err != nil {
			return err
		}
		fmt.Println(report.Figure3(res))
	case "matrix":
		names := matrixTargets
		if names == nil {
			names = sut.Names()
		}
		mods := matrixModels
		if mods == nil {
			mods = experiment.MatrixErrorModels()
		}
		fmt.Fprintf(os.Stderr, "placement matrix: %d targets x %d error models, %d injections per cell...\n",
			len(names), len(mods), *perCell)
		res, err := experiment.PlacementMatrix(ctx, opts, names, mods, *perCell)
		if err != nil {
			return err
		}
		fmt.Println(report.MatrixTable(res))
		if err := matrixCriticalityChecks(ctx, opts, names); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -campaign %q", *camp)
	}
	experiment.PrintRetrySummary(os.Stderr, opts.Timings)
	if err := experiment.WriteCampaignTimings(*benchOut, *seed, *workers, opts.Timings); err != nil {
		return err
	}
	if *benchOut != "" {
		fmt.Fprintf(os.Stderr, "campaign timing written to %s\n", *benchOut)
	}
	return nil
}

// matrixCriticalityChecks closes the matrix report: for every
// multi-output target in the matrix, measure a small permeability
// sample, rank its signals by criticality (Eqs. 3-4, with the declared
// output weights live) and verify the measured-tree ranking against the
// analytic propagation engine.
func matrixCriticalityChecks(ctx context.Context, base experiment.Options, names []string) error {
	const perInput = 60
	for _, name := range names {
		t, err := sut.Lookup(name)
		if err != nil {
			return err
		}
		outs := t.System().SystemOutputs()
		if len(outs) < 2 {
			continue
		}
		opts, err := experiment.DefaultOptionsFor(name, base.Seed)
		if err != nil {
			return err
		}
		opts.Workers = base.Workers
		opts.Shards = base.Shards
		fmt.Fprintf(os.Stderr, "criticality check on %s: %d injections per input...\n", name, perInput)
		res, err := experiment.EstimatePermeability(ctx, opts, perInput)
		if err != nil {
			return err
		}
		pr, err := core.BuildProfile(res.Matrix)
		if err != nil {
			return err
		}
		ar, err := analytic.New().Profile(res.Matrix)
		if err != nil {
			return err
		}
		tree, ana := pr.Ranked(core.ByCriticality), ar.Ranked(core.ByCriticality)
		if len(tree) != len(ana) {
			return fmt.Errorf("criticality check on %s: tree ranks %d signals, analytic %d", name, len(tree), len(ana))
		}
		fmt.Printf("multi-output criticality on %s (%d outputs), measured vs analytic:\n", name, len(outs))
		for i := range tree {
			if tree[i].Signal != ana[i].Signal {
				return fmt.Errorf("criticality check on %s: rankings diverge at #%d (tree %s, analytic %s)",
					name, i+1, tree[i].Signal, ana[i].Signal)
			}
			if tree[i].Kind != model.KindIntermediate {
				continue
			}
			fmt.Printf("  %-10s criticality %.3f\n", tree[i].Signal, tree[i].Criticality)
		}
		fmt.Println("  analytic ranking matches the measured-tree ranking")
		fmt.Println()
	}
	return nil
}
