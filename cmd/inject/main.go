// Command inject runs the fault-injection coverage campaigns:
//
//   - input: single transient bit-flips at the system inputs (the
//     paper's Section 6.2 experiment, Table 4), plus detection-latency
//     and subsumption analyses
//   - internal: periodic bit-flips in RAM and stack (the paper's
//     Section 7 experiment, Figure 3)
//   - models: coverage across five input error models (sensitivity
//     extension, DESIGN.md index A1)
//   - recovery: failure rates with and without containment (wrappers
//     vs module-internal hardening, guideline R2)
//
// Usage:
//
//	inject -campaign input [-per-signal 2000]
//	inject -campaign internal [-ram 150] [-stack 50] [-exact]
//	inject -campaign models [-per-signal 1000]
//	inject -campaign recovery [-ram 150] [-stack 50]
//	inject -campaign tightness [-per-signal 500]
//	inject -campaign integration [-per-signal 500]
//
// With -dispatch (or -checkpoint, which implies it) the campaign's
// shards run in worker subprocesses — re-execs of this binary in a
// hidden worker mode — with per-shard deadlines, retries and integrity
// checks; -checkpoint journals finished shards so a killed campaign
// resumes where it stopped. Results are byte-identical either way.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/target"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inject:", err)
		os.Exit(1)
	}
}

// tightnessSteps is the MaxStep sweep of the tightness campaign. The
// worker spec ships the same list, so parent and worker plans agree.
func tightnessSteps() []model.Word { return []model.Word{2, 4, 8, 16, 32, 64} }

func run() error {
	camp := flag.String("campaign", "input",
		"campaign: input, internal, models, recovery, tightness or integration")
	perSignal := flag.Int("per-signal", 2000, "injections per system input (input campaign)")
	ram := flag.Int("ram", 150, "RAM locations (internal campaign)")
	stack := flag.Int("stack", 50, "stack locations (internal campaign)")
	seed := flag.Int64("seed", 1, "campaign seed")
	workers := flag.Int("workers", 8, "campaign parallelism")
	shards := flag.Int("shards", 0, "plan shards (0 = default)")
	exact := flag.Bool("exact", false,
		"run full fixed-size grids instead of adaptive pruning + early stopping (internal, recovery)")
	benchOut := flag.String("bench-out", "BENCH_campaigns.json",
		"campaign timing report path (empty disables)")
	dispatchMode := flag.Bool("dispatch", false,
		"run shards in fault-tolerant worker subprocesses")
	checkpoint := flag.String("checkpoint", "",
		"shard journal enabling kill/resume (implies -dispatch)")
	shardTimeout := flag.Duration("shard-timeout", 0,
		"per-shard worker deadline, e.g. 2m (0 = default)")
	retries := flag.Int("retries", 0,
		"shard retry budget (0 = default, -1 disables)")
	workerShard := flag.Bool("worker-shard", false,
		"internal: serve campaign shards to a parent dispatcher on stdin/stdout")
	obsAddr := flag.String("obs-addr", "",
		"serve /metrics, /healthz, /debug/vars and /debug/pprof on this address (e.g. localhost:9090)")
	eventsOut := flag.String("events-out", "",
		"stream NDJSON span/event records to this file (- for stderr)")
	progress := flag.Bool("progress", false,
		"live campaign progress line on stderr (~1 Hz)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *workerShard {
		return experiment.ServeWorker(ctx, os.Getenv(experiment.WorkerSpecEnv), os.Stdin, os.Stdout)
	}
	if err := experiment.ValidateDispatchFlags(*workers, *shards, *shardTimeout, *retries, *checkpoint, *dispatchMode); err != nil {
		return err
	}
	stopTelemetry, err := experiment.StartTelemetry(experiment.TelemetryFlags{
		ObsAddr: *obsAddr, EventsOut: *eventsOut, Progress: *progress,
	}, os.Stderr)
	if err != nil {
		return err
	}
	defer stopTelemetry()

	opts := experiment.DefaultOptions(*seed)
	opts.Workers = *workers
	opts.Shards = *shards
	opts.Adaptive = !*exact // before SelfDispatch: the worker spec snapshots opts
	opts.Timings = campaign.NewCollector()
	if *dispatchMode || *checkpoint != "" {
		steps := tightnessSteps()
		spec := experiment.WorkerSpec{
			PerSignal: *perSignal, RAMLocations: *ram, StackLocations: *stack,
			PerModel: *perSignal, RecoveryRAM: *ram, RecoveryStack: *stack,
			PerStep: *perSignal, Steps: steps, IntegPerSignal: *perSignal,
		}
		if err := experiment.SelfDispatch(&opts, spec, "-worker-shard",
			*checkpoint, *shardTimeout, *retries, os.Stderr); err != nil {
			return err
		}
	}

	switch *camp {
	case "input":
		fmt.Fprintf(os.Stderr, "input-model campaign: %d injections per signal over %d cases...\n",
			*perSignal, len(opts.Cases))
		res, err := experiment.InputCoverage(ctx, opts, *perSignal, nil)
		if err != nil {
			return err
		}
		fmt.Println(report.Table4(res, target.EHSet()))
		for _, row := range res.Rows {
			if row.Signal == target.SigPACNT {
				fmt.Println(report.Subsumption(row, target.EHSet()))
				if sub := report.SubsumedBy(row, target.EA4); len(sub) > 0 {
					fmt.Printf("fully subsumed by EA4: %v\n\n", sub)
				}
			}
		}
		fmt.Println(report.LatencySummary("Detection latency (time from corruption to first detection)",
			res.All.SetLatenciesMs))
	case "models":
		fmt.Fprintf(os.Stderr, "error-model sensitivity: %d injections per model...\n", *perSignal)
		res, err := experiment.ErrorModelSensitivity(ctx, opts, *perSignal)
		if err != nil {
			return err
		}
		fmt.Println(report.ModelSensitivity(res))
	case "recovery":
		fmt.Fprintf(os.Stderr, "recovery study: %d RAM + %d stack locations x %d cases x 3 arms...\n",
			*ram, *stack, len(opts.Cases))
		res, err := experiment.RecoveryStudy(ctx, opts, *ram, *stack, nil)
		if err != nil {
			return err
		}
		fmt.Println(report.RecoveryTable(res))
	case "tightness":
		steps := tightnessSteps()
		fmt.Fprintf(os.Stderr, "EA tightness sweep: %d injections per setting...\n", *perSignal)
		res, err := experiment.EATightnessStudy(ctx, opts, *perSignal, steps)
		if err != nil {
			return err
		}
		fmt.Println(report.TightnessTable(res))
	case "integration":
		fmt.Fprintf(os.Stderr, "EA integration-mode study: %d injections...\n", *perSignal)
		res, err := experiment.EAIntegrationStudy(ctx, opts, *perSignal)
		if err != nil {
			return err
		}
		fmt.Println(report.IntegrationTable(res))
	case "internal":
		fmt.Fprintf(os.Stderr, "internal-model campaign: %d RAM + %d stack locations x %d cases...\n",
			*ram, *stack, len(opts.Cases))
		res, err := experiment.InternalCoverage(ctx, opts, *ram, *stack)
		if err != nil {
			return err
		}
		fmt.Println(report.Figure3(res))
	default:
		return fmt.Errorf("unknown -campaign %q", *camp)
	}
	experiment.PrintRetrySummary(os.Stderr, opts.Timings)
	if err := experiment.WriteCampaignTimings(*benchOut, *seed, *workers, opts.Timings); err != nil {
		return err
	}
	if *benchOut != "" {
		fmt.Fprintf(os.Stderr, "campaign timing written to %s\n", *benchOut)
	}
	return nil
}
