// Command place runs the EDM placement study: it derives the EH, PA and
// extended selections over the paper's permeability matrix or over a
// freshly measured one, and prints the selections with their motivating
// rules and the resource comparison of Table 3.
//
// Usage:
//
//	place [-source paper|measure] [-per-input 500] [-sweep] [-bench-out F]
//
// The placement metrics come from the analytic propagation solver
// (internal/analytic) by default; -analytic=false restores the original
// tree-based path enumeration, whose output is byte-identical — CI
// compares the two. -sweep appends a module × factor what-if containment
// grid, and -bench-out writes solver timing rows (plus any campaign rows
// from measure mode) in the BENCH_campaigns.json schema.
//
// Measured campaigns run adaptively by default: sampling streams stop
// once their Wilson intervals are tight (docs/adaptive.md). -exact
// restores the fixed-size grid the paper used.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/analytic"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/ea"
	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/paper"
	"repro/internal/report"
	"repro/internal/target"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "place:", err)
		os.Exit(1)
	}
}

func run() error {
	source := flag.String("source", "paper", "permeability source: paper or measure")
	perInput := flag.Int("per-input", 500,
		"injections per module input (measure mode; the paper used 2000)")
	seed := flag.Int64("seed", 1, "campaign seed (measure mode)")
	workers := flag.Int("workers", 8, "parallelism (campaigns and -sweep)")
	exact := flag.Bool("exact", false,
		"run the full fixed-size grid instead of the adaptive early-stopping campaign")
	useAnalytic := flag.Bool("analytic", true,
		"compute placement metrics with the analytic solver; false restores tree-based path enumeration")
	sweep := flag.Bool("sweep", false,
		"append a module × factor what-if containment sweep (requires -analytic)")
	sweepModules := flag.String("sweep-modules", "",
		"comma-separated modules to sweep (default: all modules)")
	sweepFactors := flag.String("sweep-factors", "0,0.25,0.5,0.75,1",
		"comma-separated permeability scale factors for -sweep")
	benchOut := flag.String("bench-out", "",
		"write solver (and campaign) timing rows as JSON to this path")
	flag.Parse()

	// Validate before any campaign work so misuse fails fast.
	if *perInput < 1 {
		return fmt.Errorf("-per-input must be >= 1 (got %d)", *perInput)
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be >= 1 (got %d)", *workers)
	}
	if *sweep && !*useAnalytic {
		return fmt.Errorf("-sweep requires the analytic solver (drop -analytic=false)")
	}
	factors, err := parseFactors(*sweepFactors)
	if err != nil {
		return err
	}

	var col *campaign.Collector
	if *benchOut != "" {
		col = campaign.NewCollector()
	}

	var p *core.Permeability
	switch *source {
	case "paper":
		p = paper.Table1()
	case "measure":
		opts := experiment.DefaultOptions(*seed)
		opts.Workers = *workers
		opts.Adaptive = !*exact
		opts.Timings = col
		fmt.Fprintln(os.Stderr, "measuring permeabilities...")
		res, err := experiment.EstimatePermeability(context.Background(), opts, *perInput)
		if err != nil {
			return err
		}
		if opts.Adaptive {
			fmt.Fprintf(os.Stderr, "  %d of %d planned runs executed (%d saved)\n",
				res.TotalRuns, res.PlannedRuns, res.PlannedRuns-res.TotalRuns)
		}
		p = res.Matrix
	default:
		return fmt.Errorf("unknown -source %q (want paper or measure)", *source)
	}

	modules, err := parseModules(p.System(), *sweepModules)
	if err != nil {
		return err
	}

	engine := analytic.Shared()
	var pr *core.Profile
	if *useAnalytic {
		diag, err := engine.Diagnose(p)
		if err != nil {
			return err
		}
		mode := "series (acyclic)"
		if !diag.Acyclic {
			mode = "fixpoint (cyclic)"
		}
		fmt.Fprintf(os.Stderr, "analytic solver: %s, %d active edges, residual %.3g\n",
			mode, diag.ActiveEdges, diag.Residual)
		pr, err = engine.Profile(p)
		if err != nil {
			return err
		}
	} else {
		pr, err = core.BuildProfile(p)
		if err != nil {
			return err
		}
	}
	th := core.DefaultThresholds()

	eh := core.SelectEH(p.System())
	pa := core.SelectPA(pr, th)
	ext := core.SelectExtended(pr, th)

	fmt.Println("EH-approach selection (experience/heuristics, Section 5.1):")
	fmt.Println(" ", eh.Selected())
	fmt.Println("PA-approach selection (propagation analysis, Section 5.3):")
	fmt.Println(" ", pa.Selected())
	fmt.Println("Extended selection (propagation + effect analysis, Section 10):")
	fmt.Println(" ", ext.Selected())
	fmt.Println()

	fmt.Println(report.Table2(pr, pa))

	inPA := map[string]bool{}
	for _, n := range target.PASet() {
		inPA[n] = true
	}
	var rows []report.Table3Row
	for _, spec := range target.AllEASpecs() {
		a, err := ea.New(spec)
		if err != nil {
			return err
		}
		rows = append(rows, report.Table3Row{
			Name: spec.Name, Signal: spec.Signal,
			InEH: true, InPA: inPA[spec.Name], Cost: a.Cost(),
		})
	}
	fmt.Println(report.Table3(rows))

	if *sweep {
		res, err := analytic.Sweep(engine, p, modules, factors, *workers)
		if err != nil {
			return err
		}
		fmt.Println(report.SweepGrid(modules, factors, res))
	}

	if col != nil {
		if err := benchSolver(col, p, modules, factors); err != nil {
			return err
		}
		if err := experiment.WriteCampaignTimings(*benchOut, *seed, *workers, col); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote timing rows to %s\n", *benchOut)
	}
	return nil
}

// parseFactors parses the -sweep-factors list, rejecting malformed or
// negative entries up front.
func parseFactors(csv string) ([]float64, error) {
	var factors []float64
	for _, field := range strings.Split(csv, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return nil, fmt.Errorf("-sweep-factors: %q is not a number", field)
		}
		if f < 0 {
			return nil, fmt.Errorf("-sweep-factors: factor %v is negative", f)
		}
		factors = append(factors, f)
	}
	if len(factors) == 0 {
		return nil, fmt.Errorf("-sweep-factors: no factors given")
	}
	return factors, nil
}

// parseModules parses the -sweep-modules list against the system,
// defaulting to every module.
func parseModules(sys *model.System, csv string) ([]model.ModuleID, error) {
	if strings.TrimSpace(csv) == "" {
		return sys.ModuleIDs(), nil
	}
	var mods []model.ModuleID
	for _, field := range strings.Split(csv, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		m := model.ModuleID(field)
		if _, ok := sys.Module(m); !ok {
			return nil, fmt.Errorf("-sweep-modules: unknown module %q", field)
		}
		mods = append(mods, m)
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("-sweep-modules: no modules given")
	}
	return mods, nil
}

// benchSolver times the analytic hot paths and observes one collector
// row per operation, with per-op allocation stats, in the same schema
// as the campaign rows.
func benchSolver(col *campaign.Collector, p *core.Permeability, modules []model.ModuleID, factors []float64) error {
	// Full ranking from a cold engine: compile + solve every row +
	// profile + rank on all three metrics.
	if err := benchLoop(col, "analytic-rank", func(i int) error {
		e := analytic.New()
		pr, err := e.Profile(p)
		if err != nil {
			return err
		}
		pr.Ranked(core.ByExposure)
		pr.Ranked(core.ByImpact)
		pr.Ranked(core.ByCriticality)
		return nil
	}); err != nil {
		return err
	}

	// Whole module × factor sweep from a cold engine, single-threaded —
	// the paper-scale "placement analysis in one go" number.
	if err := benchLoop(col, "analytic-sweep", func(i int) error {
		_, err := analytic.Sweep(analytic.New(), p, modules, factors, 1)
		return err
	}); err != nil {
		return err
	}

	// Incremental re-analysis on a synthetic grid large enough that the
	// downstream cone matters: cold solve vs. re-profiling after scaling
	// one near-source module. The factor changes every iteration so each
	// warm profile is a genuine re-analysis, not a memoized replay.
	_, gp := analytic.Grid(16, 10)
	if err := benchLoop(col, "analytic-cold", func(i int) error {
		_, err := analytic.New().Profile(gp)
		return err
	}); err != nil {
		return err
	}
	warm := analytic.New()
	if _, err := warm.Profile(gp); err != nil {
		return err
	}
	if err := benchLoop(col, "analytic-incremental", func(i int) error {
		scaled, err := gp.ScaleModule("M_0_0", 0.5+float64(i)*1e-9)
		if err != nil {
			return err
		}
		_, err = warm.Profile(scaled)
		return err
	}); err != nil {
		return err
	}
	return nil
}

// benchLoop runs op until it has accumulated ~50 ms of wall time (at
// least 10 and at most 20000 iterations) and observes one timing row
// with per-op wall time and allocation deltas.
func benchLoop(col *campaign.Collector, name string, op func(i int) error) error {
	const (
		minIters = 10
		maxIters = 20000
		budget   = 50 * time.Millisecond
	)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	runs := 0
	for runs < maxIters && (runs < minIters || time.Since(start) < budget) {
		if err := op(runs); err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}
		runs++
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	col.ObserveExt(name, runs, wall, campaign.Extras{
		AllocsPerOp:     float64(after.Mallocs-before.Mallocs) / float64(runs),
		AllocBytesPerOp: float64(after.TotalAlloc-before.TotalAlloc) / float64(runs),
	})
	return nil
}
