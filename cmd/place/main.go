// Command place runs the EDM placement study: it derives the EH, PA and
// extended selections over the paper's permeability matrix or over a
// freshly measured one, and prints the selections with their motivating
// rules and the resource comparison of Table 3.
//
// Usage:
//
//	place [-source paper|measure] [-per-input 500]
//
// Measured campaigns run adaptively by default: sampling streams stop
// once their Wilson intervals are tight (docs/adaptive.md). -exact
// restores the fixed-size grid the paper used.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ea"
	"repro/internal/experiment"
	"repro/internal/paper"
	"repro/internal/report"
	"repro/internal/target"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "place:", err)
		os.Exit(1)
	}
}

func run() error {
	source := flag.String("source", "paper", "permeability source: paper or measure")
	perInput := flag.Int("per-input", 500,
		"injections per module input (measure mode; the paper used 2000)")
	seed := flag.Int64("seed", 1, "campaign seed (measure mode)")
	workers := flag.Int("workers", 8, "campaign parallelism (measure mode)")
	exact := flag.Bool("exact", false,
		"run the full fixed-size grid instead of the adaptive early-stopping campaign")
	flag.Parse()

	// Validate before any campaign work so misuse fails fast.
	if *perInput < 1 {
		return fmt.Errorf("-per-input must be >= 1 (got %d)", *perInput)
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be >= 1 (got %d)", *workers)
	}

	var p *core.Permeability
	switch *source {
	case "paper":
		p = paper.Table1()
	case "measure":
		opts := experiment.DefaultOptions(*seed)
		opts.Workers = *workers
		opts.Adaptive = !*exact
		fmt.Fprintln(os.Stderr, "measuring permeabilities...")
		res, err := experiment.EstimatePermeability(context.Background(), opts, *perInput)
		if err != nil {
			return err
		}
		if opts.Adaptive {
			fmt.Fprintf(os.Stderr, "  %d of %d planned runs executed (%d saved)\n",
				res.TotalRuns, res.PlannedRuns, res.PlannedRuns-res.TotalRuns)
		}
		p = res.Matrix
	default:
		return fmt.Errorf("unknown -source %q (want paper or measure)", *source)
	}

	pr, err := core.BuildProfile(p)
	if err != nil {
		return err
	}
	th := core.DefaultThresholds()

	eh := core.SelectEH(p.System())
	pa := core.SelectPA(pr, th)
	ext := core.SelectExtended(pr, th)

	fmt.Println("EH-approach selection (experience/heuristics, Section 5.1):")
	fmt.Println(" ", eh.Selected())
	fmt.Println("PA-approach selection (propagation analysis, Section 5.3):")
	fmt.Println(" ", pa.Selected())
	fmt.Println("Extended selection (propagation + effect analysis, Section 10):")
	fmt.Println(" ", ext.Selected())
	fmt.Println()

	fmt.Println(report.Table2(pr, pa))

	inPA := map[string]bool{}
	for _, n := range target.PASet() {
		inPA[n] = true
	}
	var rows []report.Table3Row
	for _, spec := range target.AllEASpecs() {
		a, err := ea.New(spec)
		if err != nil {
			return err
		}
		rows = append(rows, report.Table3Row{
			Name: spec.Name, Signal: spec.Signal,
			InEH: true, InPA: inPA[spec.Name], Cost: a.Cost(),
		})
	}
	fmt.Println(report.Table3(rows))
	return nil
}
