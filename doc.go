// Package repro is a from-scratch Go reproduction of Hiller, Jhumka and
// Suri, "On the Placement of Software Mechanisms for Detection of Data
// Errors" (DSN 2002): an error propagation and effect analysis framework
// for placing executable assertions in black-box modular software,
// evaluated by fault injection on a reimplemented aircraft-arrestment
// control system.
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation.
package repro

// Version identifies this reproduction release.
const Version = "1.0.0"
