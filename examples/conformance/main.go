// Conformance: the Section 9 process — set project-level dependability
// conditions (maximum permeability, exposure and impact) and check the
// profiled target against them; then derive module-level ERM placement
// per guideline R2. Finally, persist the system description and the
// matrix as JSON so the analysis can be re-run without the simulator.
//
// Run with: go run ./examples/conformance
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/paper"
)

func main() {
	p := paper.Table1()
	pr, err := core.BuildProfile(p)
	if err != nil {
		log.Fatal(err)
	}

	// Project policy: every module must contain at least half of the
	// errors reaching it; no signal may see more than 1.5 units of
	// exposure; nothing may impact the output with more than 0.8.
	conds := core.Conditions{
		MaxModulePermeability: 0.5,
		MaxModuleExposure:     1.5,
		MaxSignalExposure:     1.5,
		MaxSignalImpact:       0.8,
	}
	findings, err := core.CheckConformance(pr, conds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conformance check against project conditions: %d findings\n", len(findings))
	for _, f := range findings {
		fmt.Println("  -", f)
	}

	// R2: which modules deserve recovery mechanisms?
	fmt.Println("\nERM placement (module level, R1/R2):")
	cands, err := core.SelectERM(p, core.DefaultModuleThresholds())
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cands {
		verdict := "skip"
		if c.Selected {
			verdict = "PLACE ERM"
		}
		fmt.Printf("  %-8s permeability %.3f, exposure %.3f -> %s %v\n",
			c.Module, c.RelativePermeability, c.RelativeExposure, verdict, c.Rules)
	}

	// Persist the analysis inputs for offline use.
	dir, err := os.MkdirTemp("", "edm-analysis")
	if err != nil {
		log.Fatal(err)
	}
	sysJSON, err := p.System().MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}
	matJSON, err := p.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}
	sysPath := filepath.Join(dir, "system.json")
	matPath := filepath.Join(dir, "permeability.json")
	if err := os.WriteFile(sysPath, sysJSON, 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(matPath, matJSON, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserialized analysis inputs:\n  %s\n  %s\n", sysPath, matPath)

	// Prove the round trip: reload and recompute one measure.
	data, err := os.ReadFile(matPath)
	if err != nil {
		log.Fatal(err)
	}
	reloaded, err := core.UnmarshalPermeability(p.System(), data)
	if err != nil {
		log.Fatal(err)
	}
	x, err := reloaded.SignalExposure("OutValue")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded matrix: exposure(OutValue) = %.3f (Table 2: 1.781)\n", x)
}
