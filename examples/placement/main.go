// Placement: the paper's study end to end on the reimplemented target —
// estimate error permeabilities by fault injection, derive the PA and
// extended placements, compare their resource footprints with the
// heuristic placement, and measure detection coverage under the input
// error model for both sets.
//
// Run with: go run ./examples/placement   (about a minute; tune -n)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ea"
	"repro/internal/experiment"
	"repro/internal/report"
	"repro/internal/target"
)

func main() {
	n := flag.Int("n", 200, "injections per module input / per system input")
	workers := flag.Int("workers", 8, "parallel runs")
	flag.Parse()

	opts := experiment.DefaultOptions(1)
	opts.Workers = *workers

	// Step 1: estimate the permeability matrix (the paper's Table 1).
	fmt.Printf("estimating permeabilities (%d injections per input)...\n", *n)
	perm, err := experiment.EstimatePermeability(context.Background(), opts, *n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d injection runs, %d active\n\n", perm.TotalRuns, perm.ActiveRuns)

	// Step 2: profile and place.
	pr, err := core.BuildProfile(perm.Matrix)
	if err != nil {
		log.Fatal(err)
	}
	th := core.DefaultThresholds()
	eh := core.SelectEH(perm.Matrix.System()).Selected()
	pa := core.SelectPA(pr, th).Selected()
	ext := core.SelectExtended(pr, th).Selected()
	fmt.Println("EH placement:      ", eh)
	fmt.Println("PA placement:      ", pa)
	fmt.Println("extended placement:", ext)
	fmt.Println()

	// Step 3: resource comparison (the paper's Table 3).
	inPA := map[string]bool{}
	for _, name := range target.PASet() {
		inPA[name] = true
	}
	var rows []report.Table3Row
	for _, spec := range target.AllEASpecs() {
		a, err := ea.New(spec)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, report.Table3Row{
			Name: spec.Name, Signal: spec.Signal,
			InEH: true, InPA: inPA[spec.Name], Cost: a.Cost(),
		})
	}
	fmt.Println(report.Table3(rows))

	// Step 4: detection coverage under the input error model (Table 4).
	fmt.Printf("measuring detection coverage (%d injections per system input)...\n", *n)
	cov, err := experiment.InputCoverage(context.Background(), opts, *n, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Table4(cov, target.EHSet()))

	ehCov := cov.All.PerSet[experiment.SetEH].Estimate()
	paCov := cov.All.PerSet[experiment.SetPA].Estimate()
	fmt.Printf("conclusion: the PA set reaches %.3f coverage vs the EH set's %.3f\n", paCov, ehCov)
	fmt.Println("at ~43% lower memory cost — the paper's C1 result.")
}
