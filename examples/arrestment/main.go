// Arrestment: run the reimplemented aircraft-arrestment target across
// the paper's 25-case mass/velocity envelope and verify every fault-free
// run meets the MIL-A-38202C-derived specification of Section 4.2.
//
// Run with: go run ./examples/arrestment
package main

import (
	"fmt"
	"log"

	"repro/internal/failure"
	"repro/internal/target"
)

func main() {
	limits := failure.DefaultLimits()
	fmt.Println("case  mass(kg)  v0(m/s)   stop(m)  time(s)  max(g)  maxF(kN)  limit(kN)  verdict")

	failures := 0
	for _, tc := range target.DefaultTestCases() {
		rig, err := target.NewRig(tc.Config(1))
		if err != nil {
			log.Fatal(err)
		}
		arrested, err := rig.RunUntilArrested(30_000)
		if err != nil {
			log.Fatal(err)
		}
		rep := failure.Classify(rig.Plant, arrested, limits)
		verdict := "OK"
		if rep.Failed() {
			verdict = "FAILURE"
			failures++
		}
		fmt.Printf("%4d  %8.0f  %7.1f  %8.1f  %7.2f  %6.2f  %8.0f  %9.0f  %s\n",
			tc.ID, tc.MassKg, tc.EngageVelocityMps,
			rep.StoppingDistanceM, rep.ArrestTimeS, rep.MaxRetardationG,
			rep.MaxForceN/1000, rep.ForceLimitN/1000, verdict)
	}
	fmt.Printf("\n%d/25 cases within specification\n", 25-failures)
	if failures > 0 {
		log.Fatal("specification violations in fault-free runs")
	}
}
