// Tanklevel: the framework's "generalized applicability" validation
// (the paper's stated future work) — run the full propagation-analysis
// pipeline on a second, unrelated target: a tank level controller with
// two system outputs (valve, criticality 1.0; alarm line, criticality
// 0.25). Because there are two outputs, impact and criticality diverge
// at runtime, which the single-output arrestment target cannot show.
//
// The campaign is the same generic engine every target shares — the
// tank is just Options.Target = "tank" (docs/targets.md).
//
// Run with: go run ./examples/tanklevel
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/tank"
)

func main() {
	// Step 1: measure the permeability matrix by fault injection.
	opts, err := experiment.DefaultOptionsFor("tank", 1)
	if err != nil {
		log.Fatal(err)
	}
	opts.Workers = 1
	const perInput = 96
	fmt.Printf("estimating tank permeabilities (%d injections per input, %d cases)...\n",
		perInput, len(opts.Cases))
	res, err := experiment.EstimatePermeability(context.Background(), opts, perInput)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d injection runs\n\n", res.TotalRuns)

	sys := tank.NewSystem()
	fmt.Println("measured permeabilities:")
	for _, e := range sys.Edges() {
		fmt.Printf("  %-8s %-8s -> %-7s %.3f\n", e.Module, e.From, e.To, res.Matrix.Get(e))
	}

	// Step 2: profile and rank by criticality (Eqs. 3-4 live, with two
	// outputs of different weight).
	ranks, err := tank.RankCriticality(res.Matrix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsignal     I(->VALVE)  I(->ALARM)  criticality")
	for _, r := range ranks {
		fmt.Printf("%-10s %10.3f  %10.3f  %11.3f\n",
			r.Signal, r.ImpactValve, r.ImpactAlarm, r.Criticality)
	}

	// Step 3: place EDMs with the same rules that reproduced the
	// paper's selections on the arrestment target.
	pr, err := core.BuildProfile(res.Matrix)
	if err != nil {
		log.Fatal(err)
	}
	th := core.DefaultThresholds()
	fmt.Println("\nPA placement:      ", core.SelectPA(pr, th).Selected())
	fmt.Println("extended placement:", core.SelectExtended(pr, th).Selected())

	// Step 4: module-level view for ERM placement (R2).
	cands, err := core.SelectERM(res.Matrix, core.DefaultModuleThresholds())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nERM candidates (R2):")
	for _, c := range cands {
		if c.Selected {
			fmt.Printf("  %-8s permeability %.3f, exposure %.3f %v\n",
				c.Module, c.RelativePermeability, c.RelativeExposure, c.Rules)
		}
	}
}
