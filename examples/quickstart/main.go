// Quickstart: model a small modular system, assign error permeabilities,
// and let the framework profile it and place error detection mechanisms.
//
// The system is a tiny sensor-fusion pipeline, deliberately not the
// paper's arrestment target, to show the framework is target-agnostic:
//
//	gyro --> [FILTER] --> rate  --> [CTRL] --> cmd --> [DRV] --> pwm
//	temp -----------------------/
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
)

func main() {
	// 1. Describe the system: signals, modules, wiring.
	sys, err := model.NewBuilder("fusion").
		AddSignal("gyro", model.Uint(12), model.AsSystemInput()).
		AddSignal("temp", model.Uint(8), model.AsSystemInput()).
		AddSignal("rate", model.Int(16)).
		AddSignal("cmd", model.Int(16)).
		AddSignal("pwm", model.Uint(8), model.AsSystemOutput(1.0)).
		AddModule("FILTER", model.In("gyro"), model.Out("rate")).
		AddModule("CTRL", model.In("rate", "temp"), model.Out("cmd")).
		AddModule("DRV", model.In("cmd"), model.Out("pwm")).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Assign error permeabilities P^M_{i,k} — normally estimated by
	// fault injection (see examples/placement); here set by hand.
	p := core.NewPermeability(sys)
	p.MustSet("FILTER", 1, 1, 0.30) // gyro -> rate: filtering masks most flips
	p.MustSet("CTRL", 1, 1, 0.90)   // rate -> cmd
	p.MustSet("CTRL", 2, 1, 0.05)   // temp -> cmd: only trims the gain
	p.MustSet("DRV", 1, 1, 0.95)    // cmd -> pwm

	// 3. Profile: exposure, impact, criticality per signal.
	pr, err := core.BuildProfile(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("signal        exposure  impact  criticality")
	for _, sp := range pr.Ranked(core.ByExposure) {
		fmt.Printf("%-12s  %8.3f  %6.3f  %11.3f\n",
			sp.Signal, sp.Exposure, sp.Impact, sp.Criticality)
	}

	// 4. Place EDMs with the propagation-analysis rules (R1) and the
	// extended rules (R1 + R3).
	th := core.DefaultThresholds()
	fmt.Println("\nPA placement:      ", core.SelectPA(pr, th).Selected())
	fmt.Println("extended placement:", core.SelectExtended(pr, th).Selected())

	// 5. Visualize propagation: where do errors in gyro go?
	tree, err := core.BuildImpactTree(p, "gyro")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(tree.Render())

	imp, err := core.Impact(p, "gyro", "pwm")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nimpact of gyro errors on pwm: %.3f\n", imp)
}
