// Multiout: criticality analysis on a multi-output system (paper
// Section 8). The arrestment target has a single output, so criticality
// degenerates to scaled impact there; this example builds a two-output
// engine controller — a fuel actuator (criticality 1.0) and a
// diagnostics link (criticality 0.15) — and shows how criticality
// re-ranks signals that impact alone ties, the paper's C3 point: "two
// signals with the same impact may have different criticalities
// depending on which outputs they affect the most."
//
// Run with: go run ./examples/multiout
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
)

func main() {
	sys, err := model.NewBuilder("engine-controller").
		AddSignal("rpm", model.Uint(16), model.AsSystemInput()).
		AddSignal("lambda", model.Uint(10), model.AsSystemInput()).
		AddSignal("load", model.Uint(10)).
		AddSignal("mix", model.Uint(10)).
		AddSignal("fuel_cmd", model.Uint(8), model.AsSystemOutput(1.0)).
		AddSignal("diag_word", model.Uint(16), model.AsSystemOutput(0.15)).
		AddModule("SENSE", model.In("rpm"), model.Out("load")).
		AddModule("MIXER", model.In("lambda", "load"), model.Out("mix")).
		AddModule("ACT", model.In("mix"), model.Out("fuel_cmd")).
		AddModule("DIAG", model.In("load", "mix"), model.Out("diag_word")).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	p := core.NewPermeability(sys)
	p.MustSet("SENSE", 1, 1, 0.80) // rpm -> load
	p.MustSet("MIXER", 1, 1, 0.70) // lambda -> mix
	p.MustSet("MIXER", 2, 1, 0.40) // load -> mix
	p.MustSet("ACT", 1, 1, 0.90)   // mix -> fuel_cmd
	p.MustSet("DIAG", 1, 1, 0.90)  // load -> diag_word
	p.MustSet("DIAG", 2, 1, 0.36)  // mix -> diag_word

	pr, err := core.BuildProfile(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("signal     I(->fuel_cmd)  I(->diag_word)  criticality")
	for _, sp := range pr.Ranked(core.ByCriticality) {
		if sp.Kind != model.KindIntermediate && sp.Kind != model.KindSystemInput {
			continue
		}
		fmt.Printf("%-10s %13.3f  %14.3f  %11.3f\n",
			sp.Signal, sp.ImpactOn["fuel_cmd"], sp.ImpactOn["diag_word"], sp.Criticality)
	}

	// load and mix have the same impact on the actuator path shape but
	// differ on the diagnostic path — criticality separates them only as
	// far as the diagnostic output's low weight allows.
	load, _ := pr.Signal("load")
	mix, _ := pr.Signal("mix")
	fmt.Printf("\nload:  impact on fuel %.3f, on diag %.3f -> criticality %.3f\n",
		load.ImpactOn["fuel_cmd"], load.ImpactOn["diag_word"], load.Criticality)
	fmt.Printf("mix:   impact on fuel %.3f, on diag %.3f -> criticality %.3f\n",
		mix.ImpactOn["fuel_cmd"], mix.ImpactOn["diag_word"], mix.Criticality)

	// Policy change: the operator now treats diagnostics as critical
	// (e.g. certification telemetry). Criticalities re-rank without
	// re-measuring anything (Eq. 3-4 scale the same impacts).
	fmt.Println("\nafter raising diag_word criticality to 0.9:")
	crits := map[model.SignalID]float64{"fuel_cmd": 1.0, "diag_word": 0.9}
	for _, sp := range pr.Ranked(core.ByImpact) {
		if sp.Kind == model.KindSystemOutput {
			continue
		}
		c, err := core.CriticalityWith(p, sp.Signal, crits)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s criticality %.3f\n", sp.Signal, c)
	}
}
